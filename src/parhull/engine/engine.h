// Batch-dynamic hull engine: a long-lived structure that absorbs batched
// point insertions while serving lock-free reads (docs/ENGINE.md).
//
// The randomized incremental structure of Algorithm 3 is naturally online:
// after a completed run every alive facet's conflict list is empty, and by
// the Clarkson–Shor conflict invariant the state "hull of P plus, for each
// alive facet t, C(t) = {q in Q : q visible from t}" is EXACTLY the state a
// one-shot run on P ++ Q reaches after inserting all of P. insert_batch
// therefore:
//
//   1. appends the batch to the point sequence (priority = index, so batch
//      order concatenates into the one-shot insertion order S);
//   2. seeds a fresh working pool with the surviving facets of the current
//      snapshot and filters the NEW range against each facet's cached
//      hyperplane (the same staged plane_kernel filter + exact-orient
//      fallback as a fresh run, see docs/PERF.md);
//   3. reruns the ProcessRidge machinery (the four cases of Section 5.2,
//      verbatim from core/parallel_hull.h) seeded on the ridges of the
//      current hull instead of the initial simplex;
//   4. publishes the result as an immutable epoch-versioned HullSnapshot
//      via an RCU-style release store (readers never block the writer; an
//      old epoch retires when its last reader's shared_ptr drops).
//
// Running this over any contiguous partition of a prepared input yields a
// facet set identical to a one-shot ParallelHull run on the full set
// (tests/test_engine.cpp verifies against a SequentialHull recompute too).
//
// Failure semantics follow the driver contract of docs/ERRORS.md: a batch
// either commits (new epoch) or rolls back completely — the previous epoch
// stays published, the point sequence is untouched, and the engine remains
// usable. Capacity failures regrow the ridge table exactly like
// ParallelHull; a RunController in Params adds per-batch deadlines and
// cancellation; the Supervisor wrapping lives in engine/batcher.h.
//
// Concurrency contract: insert_batch is SINGLE-WRITER (the RequestBatcher
// serializes it); snapshot(), epoch() and stats() are safe from any thread
// at any time.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "parhull/common/assert.h"
#include "parhull/common/counters.h"
#include "parhull/common/run_control.h"
#include "parhull/common/status.h"
#include "parhull/common/types.h"
#include "parhull/containers/arena.h"
#include "parhull/containers/concurrent_pool.h"
#include "parhull/containers/ridge_map.h"
#include "parhull/engine/snapshot.h"
#include "parhull/geometry/plane.h"
#include "parhull/hull/hull_common.h"
#include "parhull/parallel/parallel_for.h"
#include "parhull/parallel/primitives.h"
#include "parhull/testing/fault_point.h"
#include "parhull/testing/schedule_point.h"

namespace parhull {

namespace engine_detail {
// Relaxed fetch-max (same shape as detail::atomic_max in parallel_hull.h,
// redeclared here so the engine does not depend on the one-shot driver).
inline void atomic_max_u32(std::atomic<std::uint32_t>& a, std::uint32_t v) {
  std::uint32_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Publication cell for the current snapshot. libstdc++ 12's
// std::atomic<std::shared_ptr> releases its reader-side spinlock with
// memory_order_relaxed (shared_ptr_atomic.h load()), which leaves no
// happens-before edge from a reader's critical-section pointer read to
// the next writer's swap — a formal data race that TSan reports under
// reader/writer stress. This is the same tiny-spinlock design with a
// release unlock on both paths, so the pairing is explicit and
// sanitizer-clean. The critical section is one shared_ptr copy or swap
// (a refcount bump), so readers and the writer block each other for a
// few instructions at most; the retired epoch's reference is dropped
// outside the lock.
template <int D>
class SnapshotCell {
 public:
  std::shared_ptr<const HullSnapshot<D>> load() const {
    lock();
    std::shared_ptr<const HullSnapshot<D>> ret = ptr_;
    unlock();
    return ret;
  }

  void store(std::shared_ptr<const HullSnapshot<D>> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the previous epoch; its reference drops here, so a
    // destructor-triggering retirement never runs under the lock.
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const HullSnapshot<D>> ptr_;
};

template <int D>
inline CoordBounds<D> merge_bounds(const CoordBounds<D>& a,
                                   const CoordBounds<D>& b) {
  CoordBounds<D> out = a;
  for (int j = 0; j < D; ++j) {
    if (b.max_abs[static_cast<std::size_t>(j)] >
        out.max_abs[static_cast<std::size_t>(j)]) {
      out.max_abs[static_cast<std::size_t>(j)] =
          b.max_abs[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

template <int D>
inline bool bounds_equal(const CoordBounds<D>& a, const CoordBounds<D>& b) {
  return a.max_abs == b.max_abs;
}
}  // namespace engine_detail

template <int D, template <int> class MapT = RidgeMapCAS>
class HullEngine {
 public:
  struct Params {
    // Expected distinct ridge keys per batch; 0 = auto
    // (4·D·(surviving facets + batch size) + 64). On overflow the batch
    // regrows like ParallelHull: doubled expected_keys up to max_regrows,
    // then optionally the unbounded chained backend.
    std::size_t expected_keys = 0;
    bool parallel_filter = true;
    std::size_t filter_grain = kDefaultFilterGrain;
    int max_regrows = 4;
    bool chained_fallback = true;
    // Optional per-batch supervision (deadline/cancel polls at ProcessRidge
    // entry and filter chunk boundaries). Not owned; must outlive the call.
    RunController* controller = nullptr;
  };

  struct BatchResult {
    HullStatus status = HullStatus::kBadInput;
    bool ok = false;  // status == kOk
    std::uint64_t epoch = 0;          // epoch published by this batch
    std::size_t batch_points = 0;
    std::size_t hull_facets = 0;      // alive facets after the batch
    std::uint64_t facets_created = 0;  // created this epoch (excl. seeds)
    std::uint64_t visibility_tests = 0;
    std::uint32_t dependence_depth = 0;  // per-epoch instrumentation
    std::uint32_t max_round = 0;
    std::uint32_t regrows = 0;
    bool used_chained_fallback = false;
  };

  explicit HullEngine(Params params = {}) : params_(params) {}

  void set_params(const Params& params) { params_ = params; }
  const Params& params() const { return params_; }

  // The freshest published snapshot (null before the first committed
  // batch). The cell's release unlock pairs with this load's acquire
  // lock: every facet and point of the snapshot is fully written before
  // it is visible (see engine_detail::SnapshotCell for why this is not
  // std::atomic<std::shared_ptr>).
  std::shared_ptr<const HullSnapshot<D>> snapshot() const {
    return snapshot_.load();
  }
  std::uint64_t epoch() const {
    auto snap = snapshot();
    return snap ? snap->epoch : 0;
  }
  EngineStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  // Insert a batch of points, publishing a new epoch on success. The FIRST
  // batch must be prepared like any hull input (prepare_input<D>: at least
  // D+1 points, the first D+1 affinely independent); later batches may be
  // anything finite, including empty, all-interior, or duplicate points.
  // On any non-kOk status the engine rolls back to the previous epoch and
  // stays usable (docs/ERRORS.md reusable-after-failure contract).
  BatchResult insert_batch(const PointSet<D>& batch) {
    const auto start = std::chrono::steady_clock::now();
    BatchResult res;
    res.batch_points = batch.size();
    std::shared_ptr<const HullSnapshot<D>> base = snapshot();
    if (!all_finite<D>(batch)) {
      res.status = HullStatus::kBadInput;  // NaN/Inf never reach predicates
      return fail_batch(res);
    }
    if (base == nullptr) {
      if (batch.size() < static_cast<std::size_t>(D) + 1) {
        res.status = HullStatus::kBadInput;
        return fail_batch(res);
      }
      std::vector<const Point<D>*> probe;
      probe.reserve(static_cast<std::size_t>(D) + 1);
      for (int i = 0; i <= D; ++i) probe.push_back(&batch[static_cast<std::size_t>(i)]);
      if (!affinely_independent<D>(probe)) {
        res.status = HullStatus::kDegenerateInput;
        return fail_batch(res);
      }
    }

    // Candidate point sequence for this batch: copy-on-write append, so a
    // failed batch simply drops the copy and the published epoch's shared
    // point set is never touched.
    auto pts = base != nullptr
                   ? std::make_shared<PointSet<D>>(*base->points)
                   : std::make_shared<PointSet<D>>();
    const PointId first_new = static_cast<PointId>(pts->size());
    pts->insert(pts->end(), batch.begin(), batch.end());

    CoordBounds<D> bounds = coord_bounds<D>(*pts);
    const bool bounds_grew =
        base != nullptr && !engine_detail::bounds_equal<D>(bounds, base->bounds);
    const Point<D> interior =
        base != nullptr ? base->interior : centroid<D>(pts->data(), D + 1);

    const std::size_t seed_facets = base != nullptr ? base->facets.size() : 0;
    std::size_t expected =
        params_.expected_keys != 0
            ? params_.expected_keys
            : 4 * static_cast<std::size_t>(D) * (seed_facets + batch.size()) +
                  64;

    std::shared_ptr<HullSnapshot<D>> built;
    for (int attempt = 0;; ++attempt) {
      // Between regrow attempts: don't start another expensive attempt if
      // the batch was cancelled or its deadline expired during the last one.
      if (PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
        res.status = params_.controller->stop_status();
        res.regrows = static_cast<std::uint32_t>(attempt);
        reset_working_state();
        return fail_batch(res);
      }
      reset_working_state();
      map_ = make_map<MapT<D>>(expected);
      if (map_ == nullptr || map_->failed()) {
        res.status = HullStatus::kCapacityExceeded;
      } else {
        built = run_attempt(*pts, first_new, bounds, bounds_grew, interior,
                            base.get(), *map_, res);
      }
      res.regrows = static_cast<std::uint32_t>(attempt);
      if (res.status != HullStatus::kCapacityExceeded ||
          attempt >= params_.max_regrows) {
        break;
      }
      if (expected > std::numeric_limits<std::size_t>::max() / 2) break;
      expected *= 2;
    }
    if (res.status == HullStatus::kCapacityExceeded &&
        params_.chained_fallback &&
        !std::is_same_v<MapT<D>, RidgeMapChained<D>>) {
      const std::uint32_t regrows = res.regrows;
      reset_working_state();
      fallback_map_ = make_map<RidgeMapChained<D>>(expected);
      if (fallback_map_ != nullptr) {
        built = run_attempt(*pts, first_new, bounds, bounds_grew, interior,
                            base.get(), *fallback_map_, res);
        res.regrows = regrows;
        res.used_chained_fallback = true;
      }
    }
    if (res.status != HullStatus::kOk) {
      reset_working_state();
      return fail_batch(res);
    }

    // --- Commit: stamp the epoch and publish. Everything the snapshot
    // references is written before the cell's release unlock; readers pair
    // with its acquire lock, so a reader can never observe a half-built
    // epoch.
    built->epoch = (base != nullptr ? base->epoch : 0) + 1;
    built->points = pts;
    res.epoch = built->epoch;
    res.hull_facets = built->facets.size();
    res.ok = true;
    const std::uint64_t pool_size = pool_ != nullptr ? pool_->size() : 0;
    // The whole per-epoch working state (pool of seed copies + created
    // facets, conflict arena, ridge map) dies here: old epochs keep only
    // their snapshot, so dead facets never accumulate across batches.
    reset_working_state();
    PARHULL_SCHEDULE_POINT();  // snapshot built, not yet visible to readers
    snapshot_.store(std::shared_ptr<const HullSnapshot<D>>(std::move(built)));
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.epoch = res.epoch;
      stats_.batches += 1;
      stats_.points = pts->size();
      stats_.hull_facets = res.hull_facets;
      stats_.facets_created_total += res.facets_created;
      stats_.visibility_tests_total += res.visibility_tests;
      stats_.regrows_total += res.regrows;
      stats_.last_batch_points = res.batch_points;
      stats_.last_pool_size = pool_size;
      stats_.last_batch_ms = elapsed;
    }
    return res;
  }

 private:
  struct Call {
    FacetId t1;
    RidgeKey<D> r;
    FacetId t2;
  };

  template <class Map>
  static std::unique_ptr<Map> make_map(std::size_t expected_keys) {
    if (PARHULL_FAULT_POINT(kAllocation)) return nullptr;
    try {
      return std::make_unique<Map>(expected_keys);
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
  }

  BatchResult& fail_batch(BatchResult& res) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed_batches += 1;
    return res;
  }

  void reset_working_state() {
    pts_ = nullptr;
    pool_.reset();
    arena_.reset();
    map_.reset();
    fallback_map_.reset();
    fail_.reset();
    tests_.reset();
    max_depth_.store(0, std::memory_order_relaxed);
    max_round_.store(0, std::memory_order_relaxed);
  }

  void fail(HullStatus s) { fail_.mark(s); }
  bool failed() const { return fail_.failed(); }

  // One attempt at the batch: seed, run ProcessRidge to quiescence, build
  // the (unpublished) snapshot. Returns null unless res.status == kOk.
  template <class Map>
  std::shared_ptr<HullSnapshot<D>> run_attempt(
      const PointSet<D>& pts, PointId first_new, const CoordBounds<D>& bounds,
      bool bounds_grew, const Point<D>& interior,
      const HullSnapshot<D>* base, Map& map, BatchResult& res) {
    res.facets_created = 0;
    res.visibility_tests = 0;
    const std::size_t n = pts.size();
    pts_ = &pts;
    pool_ = std::make_unique<ConcurrentPool<Facet<D>>>();
    const int workers = Scheduler::get().num_workers();
    arena_ = std::make_unique<ConflictArena>(workers);
    bounds_ = bounds;
    interior_ = interior;
    tests_.resize(workers);

    std::vector<Call> seeds;
    std::size_t seed_count = 0;
    if (base == nullptr) {
      // --- First batch: initial simplex + its ridges, exactly as a fresh
      // Algorithm 3 run (core/parallel_hull.h lines 2–6).
      std::array<FacetId, static_cast<std::size_t>(D) + 1> initial{};
      for (int k = 0; k <= D; ++k) {
        FacetId id = 0;
        if (!pool_->try_allocate(id)) {
          res.status = HullStatus::kPoolExhausted;
          return nullptr;
        }
        initial[static_cast<std::size_t>(k)] = id;
        Facet<D>& f = (*pool_)[id];
        int out = 0;
        for (int v = 0; v <= D; ++v) {
          if (v != k) f.vertices[static_cast<std::size_t>(out++)] =
              static_cast<PointId>(v);
        }
        if (!orient_outward<D>(pts, f.vertices, interior_)) {
          res.status = HullStatus::kDegenerateInput;
          return nullptr;
        }
        f.plane = make_plane<D>(pts, f.vertices, bounds_);
        f.depth = 0;
        f.round = 0;
      }
      parallel_for(0, static_cast<std::size_t>(D) + 1, [&](std::size_t k) {
        Facet<D>& f = (*pool_)[initial[k]];
        f.conflicts = filter_visible_range<D>(
            pts, f.plane, f.vertices, static_cast<PointId>(D + 1),
            n - (static_cast<std::size_t>(D) + 1), *arena_, filter_grain(),
            params_.controller);
        tests_.add(Scheduler::worker_id(),
                   n - (static_cast<std::size_t>(D) + 1));
      }, 1);
      for (int i = 0; i <= D; ++i) {
        for (int j = i + 1; j <= D; ++j) {
          std::array<PointId, static_cast<std::size_t>(D - 1)> ids{};
          int out = 0;
          for (int v = 0; v <= D; ++v) {
            if (v != i && v != j) ids[static_cast<std::size_t>(out++)] =
                static_cast<PointId>(v);
          }
          seeds.push_back(Call{initial[static_cast<std::size_t>(i)],
                               RidgeKey<D>::from_unsorted(ids),
                               initial[static_cast<std::size_t>(j)]});
        }
      }
      seed_count = static_cast<std::size_t>(D) + 1;
    } else {
      // --- Incremental batch: seed the pool with the surviving facets of
      // the published epoch. Sequential allocation keeps pool id ==
      // snapshot index, so the snapshot's adjacency doubles as the seed
      // ridge pairing (each ridge seeded once, by its lower-index facet).
      seed_count = base->facets.size();
      for (std::size_t i = 0; i < seed_count; ++i) {
        FacetId id = 0;
        if (!pool_->try_allocate(id)) {
          res.status = HullStatus::kPoolExhausted;
          return nullptr;
        }
        PARHULL_DCHECK(id == static_cast<FacetId>(i));
        Facet<D>& f = (*pool_)[id];
        f.vertices = base->facets[i].vertices;
        // The cached hyperplane's error bound covers every point within
        // the bounds it was built with; a batch that widens the coordinate
        // bounds invalidates it, so rebuild. Certified signs never change
        // (only the certain/uncertain split does), keeping the facet set
        // identical to a one-shot run built with full-set bounds.
        f.plane = bounds_grew
                      ? make_plane<D>(pts, f.vertices, bounds_)
                      : base->facets[i].plane;
        f.depth = 0;
        f.round = 0;
      }
      parallel_for(0, seed_count, [&](std::size_t i) {
        Facet<D>& f = (*pool_)[static_cast<FacetId>(i)];
        f.conflicts = filter_visible_range<D>(
            pts, f.plane, f.vertices, first_new, n - first_new, *arena_,
            filter_grain(), params_.controller);
        tests_.add(Scheduler::worker_id(), n - first_new);
      }, 1);
      for (std::size_t i = 0; i < seed_count; ++i) {
        const SnapshotFacet<D>& f = base->facets[i];
        for (int k = 0; k < D; ++k) {
          const std::uint32_t other = f.neighbors[static_cast<std::size_t>(k)];
          if (static_cast<std::uint32_t>(i) < other) {
            std::array<PointId, static_cast<std::size_t>(D - 1)> ids{};
            int out = 0;
            for (int v = 0; v < D; ++v) {
              if (v != k) ids[static_cast<std::size_t>(out++)] =
                  f.vertices[static_cast<std::size_t>(v)];
            }
            seeds.push_back(Call{static_cast<FacetId>(i),
                                 RidgeKey<D>::from_unsorted(ids),
                                 static_cast<FacetId>(other)});
          }
        }
      }
    }

    parallel_for(0, seeds.size(), [&](std::size_t s) {
      process_ridge(map, seeds[s].t1, seeds[s].r, seeds[s].t2, 1);
    }, 1);

    // --- Fold failures (same final-poll protocol as ParallelHull: a stop
    // that landed in the last filter with no ProcessRidge left to observe
    // it still fails the attempt, so truncated conflict lists can never
    // influence a committed epoch).
    if (map.failed()) fail(map.failure());
    if (!failed() &&
        PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
      fail(params_.controller->stop_status());
    }
    res.visibility_tests = tests_.total();
    // Facets created this epoch: everything allocated except the seed
    // copies of the previous epoch's survivors (the first batch's initial
    // simplex counts as created, matching ParallelHull's accounting).
    res.facets_created =
        pool_->size() -
        (base == nullptr ? 0 : static_cast<std::uint64_t>(seed_count));
    res.dependence_depth = max_depth_.load(std::memory_order_relaxed);
    res.max_round = max_round_.load(std::memory_order_relaxed);
    if (failed()) {
      res.status = fail_.status();
      return nullptr;
    }
    auto built = build_snapshot(bounds);
    if (built == nullptr) {
      // Allocation failure (real or injected) while materializing the
      // snapshot: transient, handled by the regrow/retry loop.
      res.status = HullStatus::kCapacityExceeded;
      return nullptr;
    }
    res.status = HullStatus::kOk;
    return built;
  }

  // ProcessRidge, cases 1–4 of Section 5.2 — the same machinery as
  // core/parallel_hull.h, operating on the epoch's working pool. Conflict
  // lists only ever hold this batch's points, so pivots and priorities are
  // those of the equivalent one-shot run.
  template <class Map>
  void process_ridge(Map& map, FacetId t1, RidgeKey<D> r, FacetId t2,
                     std::uint32_t round) {
    if (failed()) return;
    if (PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
      fail(params_.controller->stop_status());
      return;
    }
    const PointSet<D>& pts = *pts_;
    PointId p1, p2;
    while (true) {
      p1 = (*pool_)[t1].pivot();
      p2 = (*pool_)[t2].pivot();
      if (p1 == kInvalidPoint && p2 == kInvalidPoint) {
        return;  // case 1: ridge survives the batch
      }
      if (p1 == p2) {
        (*pool_)[t1].kill();  // case 2: the pivot buries ridge r
        (*pool_)[t2].kill();
        return;
      }
      if (p2 < p1) {
        std::swap(t1, t2);  // case 3: flip roles
        continue;
      }
      break;  // case 4
    }

    const PointId p = p1;
    Facet<D>& f1 = (*pool_)[t1];
    Facet<D>& f2 = (*pool_)[t2];
    FacetId tid = 0;
    if (!pool_->try_allocate(tid)) {
      fail(HullStatus::kPoolExhausted);
      return;
    }
    Facet<D>& t = (*pool_)[tid];
    for (int v = 0; v < D - 1; ++v) {
      t.vertices[static_cast<std::size_t>(v)] =
          r.v[static_cast<std::size_t>(v)];
    }
    t.vertices[static_cast<std::size_t>(D - 1)] = p;
    if (!orient_outward<D>(pts, t.vertices, interior_)) {
      t.kill();
      fail(HullStatus::kDegenerateInput);
      return;
    }
    t.plane = make_plane<D>(pts, t.vertices, bounds_);
    t.apex = p;
    t.support0 = t1;
    t.support1 = t2;
    t.depth = 1 + std::max(f1.depth, f2.depth);
    t.round = round;
    engine_detail::atomic_max_u32(max_depth_, t.depth);
    engine_detail::atomic_max_u32(max_round_, round);

    auto mf = merge_filter_conflicts<D>(f1.conflicts, f2.conflicts, pts,
                                        t.plane, t.vertices, p, *arena_,
                                        filter_grain(), params_.controller);
    t.conflicts = mf.conflicts;
    tests_.add(Scheduler::worker_id(), mf.tests);
    f1.kill();

    Call calls[D];
    int pending = 0;
    for (int v = 0; v < D; ++v) {
      if (t.vertices[static_cast<std::size_t>(v)] == p) {
        calls[pending++] = Call{tid, r, t2};
      } else {
        RidgeKey<D> side = t.ridge_omitting(v);
        if (!map.insert_and_set(side, tid)) {
          FacetId other = map.get_value(side, tid);
          calls[pending++] = Call{tid, side, other};
        }
      }
    }
    if (map.failed()) {
      fail(map.failure());
      return;
    }
    spawn(map, calls, pending, round + 1);
  }

  template <class Map>
  void spawn(Map& map, Call* calls, int count, std::uint32_t round) {
    if (count == 0) return;
    if (count == 1) {
      process_ridge(map, calls[0].t1, calls[0].r, calls[0].t2, round);
      return;
    }
    int half = count / 2;
    par_do([&] { spawn(map, calls, half, round); },
           [&] { spawn(map, calls + half, count - half, round); });
  }

  // Materialize the committed epoch: alive facets in canonical order
  // (ascending sorted-vertex tuples) with ridge adjacency wired. Null on
  // allocation failure (including an injected one — the snapshot is the
  // one allocation left after the attempt itself succeeded).
  std::shared_ptr<HullSnapshot<D>> build_snapshot(
      const CoordBounds<D>& bounds) {
    if (PARHULL_FAULT_POINT(kAllocation)) return nullptr;
    try {
      auto snap = std::make_shared<HullSnapshot<D>>();
      snap->bounds = bounds;
      snap->interior = interior_;
      struct Keyed {
        std::array<PointId, static_cast<std::size_t>(D)> key;
        FacetId id;
        bool operator<(const Keyed& o) const { return key < o.key; }
      };
      std::vector<Keyed> order;
      for (FacetId id = 0; id < pool_->size(); ++id) {
        const Facet<D>& f = (*pool_)[id];
        if (f.alive()) order.push_back({canonical_vertices<D>(f), id});
      }
      std::sort(order.begin(), order.end());
      snap->facets.resize(order.size());
      std::map<RidgeKey<D>, std::pair<std::uint32_t, int>> ridge_pairs;
      for (std::size_t i = 0; i < order.size(); ++i) {
        SnapshotFacet<D>& sf = snap->facets[i];
        const Facet<D>& f = (*pool_)[order[i].id];
        sf.vertices = f.vertices;
        sf.plane = f.plane;
        for (int k = 0; k < D; ++k) {
          RidgeKey<D> key = f.ridge_omitting(k);
          auto it = ridge_pairs.find(key);
          if (it == ridge_pairs.end()) {
            ridge_pairs.emplace(key,
                                std::pair<std::uint32_t, int>(
                                    static_cast<std::uint32_t>(i), k));
          } else {
            sf.neighbors[static_cast<std::size_t>(k)] = it->second.first;
            snap->facets[it->second.first]
                .neighbors[static_cast<std::size_t>(it->second.second)] =
                static_cast<std::uint32_t>(i);
            ridge_pairs.erase(it);
          }
        }
      }
      // A committed hull is closed: every ridge pairs exactly two facets.
      PARHULL_CHECK_MSG(ridge_pairs.empty(),
                        "engine snapshot: unpaired hull ridge");
      return snap;
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
  }

  std::size_t filter_grain() const {
    return params_.parallel_filter ? params_.filter_grain : 0;
  }

  Params params_;
  engine_detail::SnapshotCell<D> snapshot_;

  // Per-batch working state, dropped on commit or rollback.
  const PointSet<D>* pts_ = nullptr;
  std::unique_ptr<ConcurrentPool<Facet<D>>> pool_;
  std::unique_ptr<ConflictArena> arena_;
  std::unique_ptr<MapT<D>> map_;
  std::unique_ptr<RidgeMapChained<D>> fallback_map_;
  CoordBounds<D> bounds_{};
  Point<D> interior_{};
  detail::FailureLatch fail_;
  WorkerCounter tests_;
  std::atomic<std::uint32_t> max_depth_{0};
  std::atomic<std::uint32_t> max_round_{0};

  mutable std::mutex stats_mu_;
  EngineStats stats_;
};

}  // namespace parhull
