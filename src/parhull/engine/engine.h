// Batch-dynamic hull engine: a long-lived structure that absorbs batched
// point insertions while serving lock-free reads (docs/ENGINE.md).
//
// The randomized incremental structure of Algorithm 3 is naturally online:
// after a completed run every alive facet's conflict list is empty, and by
// the Clarkson–Shor conflict invariant the state "hull of P plus, for each
// alive facet t, C(t) = {q in Q : q visible from t}" is EXACTLY the state a
// one-shot run on P ++ Q reaches after inserting all of P. insert_batch
// therefore:
//
//   1. appends the batch to the point sequence (priority = index, so batch
//      order concatenates into the one-shot insertion order S);
//   2. seeds a fresh working pool with the surviving facets of the current
//      snapshot and filters the NEW range against each facet's cached
//      hyperplane (the same staged plane_kernel filter + exact-orient
//      fallback as a fresh run, see docs/PERF.md);
//   3. reruns the ProcessRidge machinery (the four cases of Section 5.2,
//      verbatim from core/parallel_hull.h) seeded on the ridges of the
//      current hull instead of the initial simplex;
//   4. publishes the result as an immutable epoch-versioned HullSnapshot
//      via an RCU-style release store (readers never block the writer; an
//      old epoch retires when its last reader's shared_ptr drops).
//
// Running this over any contiguous partition of a prepared input yields a
// facet set identical to a one-shot ParallelHull run on the full set
// (tests/test_engine.cpp verifies against a SequentialHull recompute too).
//
// delete_batch / update_batch extend the same trick to removals by CHANGE
// PROPAGATION instead of recomputation. Deleting points that are not hull
// vertices only flips tombstone bits — every facet certificate survives.
// When hull vertices die, the facets incident to them (the deleted points'
// conflict frontier — every facet whose certificate names a dead vertex)
// are tombstoned, and the hole is re-closed from K = the surviving hull
// vertices: conv(K) is rebuilt (a hull computation on |K| << n points),
// its facets split into SURVIVORS (tuple present in the old snapshot —
// cached hyperplane reused, provably conflict-free over old points) and
// CLOSURE facets (new — filtered against the surviving non-vertex points,
// the only candidates that can resurface, since anything strictly inside
// conv(K) is inside the new hull too). By the Clarkson–Shor invariant that
// state is exactly the one-shot state "K inserted, everything else
// pending", so re-seeding ProcessRidge on the ridges of conv(K) and
// running to quiescence yields the hull of the survivors — byte-identical
// in canonical order to a fresh run (invariant I10, DESIGN.md;
// tests/test_engine_dynamic.cpp checks it differentially). If the
// survivors cannot support conv(K) (fewer than D+1 alive vertices, or a
// degenerate K), the engine falls back to a full re-seed from a fresh
// simplex of the surviving points — same machinery, seeded like a first
// batch (BatchResult::full_rebuild reports this).
//
// Failure semantics follow the driver contract of docs/ERRORS.md: a batch
// either commits (new epoch) or rolls back completely — the previous epoch
// stays published, the point sequence is untouched, and the engine remains
// usable. Capacity failures regrow the ridge table exactly like
// ParallelHull; a RunController in Params adds per-batch deadlines and
// cancellation; the Supervisor wrapping lives in engine/batcher.h.
//
// Concurrency contract: insert_batch/delete_batch/update_batch are
// SINGLE-WRITER (the RequestBatcher serializes them); snapshot(), epoch()
// and stats() are safe from any thread at any time.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "parhull/common/assert.h"
#include "parhull/common/counters.h"
#include "parhull/common/run_control.h"
#include "parhull/common/status.h"
#include "parhull/common/types.h"
#include "parhull/containers/arena.h"
#include "parhull/containers/concurrent_pool.h"
#include "parhull/containers/ridge_map.h"
#include "parhull/engine/snapshot.h"
#include "parhull/geometry/plane.h"
#include "parhull/hull/hull_common.h"
#include "parhull/hull/sequential_hull.h"
#include "parhull/parallel/parallel_for.h"
#include "parhull/parallel/primitives.h"
#include "parhull/testing/fault_point.h"
#include "parhull/testing/schedule_point.h"

namespace parhull {

namespace engine_detail {
// Relaxed fetch-max (same shape as detail::atomic_max in parallel_hull.h,
// redeclared here so the engine does not depend on the one-shot driver).
inline void atomic_max_u32(std::atomic<std::uint32_t>& a, std::uint32_t v) {
  std::uint32_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Publication cell for the current snapshot. libstdc++ 12's
// std::atomic<std::shared_ptr> releases its reader-side spinlock with
// memory_order_relaxed (shared_ptr_atomic.h load()), which leaves no
// happens-before edge from a reader's critical-section pointer read to
// the next writer's swap — a formal data race that TSan reports under
// reader/writer stress. This is the same tiny-spinlock design with a
// release unlock on both paths, so the pairing is explicit and
// sanitizer-clean. The critical section is one shared_ptr copy or swap
// (a refcount bump), so readers and the writer block each other for a
// few instructions at most; the retired epoch's reference is dropped
// outside the lock.
template <int D>
class SnapshotCell {
 public:
  std::shared_ptr<const HullSnapshot<D>> load() const {
    lock();
    std::shared_ptr<const HullSnapshot<D>> ret = ptr_;
    unlock();
    return ret;
  }

  void store(std::shared_ptr<const HullSnapshot<D>> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the previous epoch; its reference drops here, so a
    // destructor-triggering retirement never runs under the lock.
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const HullSnapshot<D>> ptr_;
};

template <int D>
inline CoordBounds<D> merge_bounds(const CoordBounds<D>& a,
                                   const CoordBounds<D>& b) {
  CoordBounds<D> out = a;
  for (int j = 0; j < D; ++j) {
    if (b.max_abs[static_cast<std::size_t>(j)] >
        out.max_abs[static_cast<std::size_t>(j)]) {
      out.max_abs[static_cast<std::size_t>(j)] =
          b.max_abs[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

template <int D>
inline bool bounds_equal(const CoordBounds<D>& a, const CoordBounds<D>& b) {
  return a.max_abs == b.max_abs;
}
}  // namespace engine_detail

template <int D, template <int> class MapT = RidgeMapCAS>
class HullEngine {
 public:
  struct Params {
    // Expected distinct ridge keys per batch; 0 = auto
    // (4·D·(surviving facets + batch size) + 64). On overflow the batch
    // regrows like ParallelHull: doubled expected_keys up to max_regrows,
    // then optionally the unbounded chained backend.
    std::size_t expected_keys = 0;
    bool parallel_filter = true;
    std::size_t filter_grain = kDefaultFilterGrain;
    int max_regrows = 4;
    bool chained_fallback = true;
    // Optional per-batch supervision (deadline/cancel polls at ProcessRidge
    // entry and filter chunk boundaries). Not owned; must outlive the call.
    RunController* controller = nullptr;
  };

  struct BatchResult {
    HullStatus status = HullStatus::kBadInput;
    bool ok = false;  // status == kOk
    std::uint64_t epoch = 0;          // epoch published by this batch
    std::size_t batch_points = 0;
    std::size_t hull_facets = 0;      // alive facets after the batch
    std::uint64_t facets_created = 0;  // created this epoch (excl. seeds)
    std::uint64_t visibility_tests = 0;
    std::uint32_t dependence_depth = 0;  // per-epoch instrumentation
    std::uint32_t max_round = 0;
    std::uint32_t regrows = 0;
    bool used_chained_fallback = false;
    // Deletion instrumentation (delete_batch / update_batch only).
    std::size_t deleted_points = 0;     // tombstones added by this batch
    std::size_t live_points = 0;        // live points after the batch
    std::size_t tombstoned_facets = 0;  // hole: base facets losing a vertex
    std::size_t closure_facets = 0;     // conv(K) facets not in the base
    bool full_rebuild = false;          // fell back to a fresh-simplex seed
  };

  explicit HullEngine(Params params = {}) : params_(params) {}

  void set_params(const Params& params) { params_ = params; }
  const Params& params() const { return params_; }

  // The freshest published snapshot (null before the first committed
  // batch). The cell's release unlock pairs with this load's acquire
  // lock: every facet and point of the snapshot is fully written before
  // it is visible (see engine_detail::SnapshotCell for why this is not
  // std::atomic<std::shared_ptr>).
  std::shared_ptr<const HullSnapshot<D>> snapshot() const {
    return snapshot_.load();
  }
  std::uint64_t epoch() const {
    auto snap = snapshot();
    return snap ? snap->epoch : 0;
  }
  EngineStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  // Insert a batch of points, publishing a new epoch on success. The FIRST
  // batch must be prepared like any hull input (prepare_input<D>: at least
  // D+1 points, the first D+1 affinely independent); later batches may be
  // anything finite, including empty, all-interior, or duplicate points.
  // On any non-kOk status the engine rolls back to the previous epoch and
  // stays usable (docs/ERRORS.md reusable-after-failure contract).
  BatchResult insert_batch(const PointSet<D>& batch) {
    const auto start = std::chrono::steady_clock::now();
    BatchResult res;
    res.batch_points = batch.size();
    std::shared_ptr<const HullSnapshot<D>> base = snapshot();
    if (!all_finite<D>(batch)) {
      res.status = HullStatus::kBadInput;  // NaN/Inf never reach predicates
      return fail_batch(res);
    }
    if (base == nullptr) {
      if (batch.size() < static_cast<std::size_t>(D) + 1) {
        res.status = HullStatus::kBadInput;
        return fail_batch(res);
      }
      std::vector<const Point<D>*> probe;
      probe.reserve(static_cast<std::size_t>(D) + 1);
      for (int i = 0; i <= D; ++i) probe.push_back(&batch[static_cast<std::size_t>(i)]);
      if (!affinely_independent<D>(probe)) {
        res.status = HullStatus::kDegenerateInput;
        return fail_batch(res);
      }
    }

    // Candidate point sequence for this batch: copy-on-write append, so a
    // failed batch simply drops the copy and the published epoch's shared
    // point set is never touched.
    auto pts = base != nullptr
                   ? std::make_shared<PointSet<D>>(*base->points)
                   : std::make_shared<PointSet<D>>();
    const PointId first_new = static_cast<PointId>(pts->size());
    pts->insert(pts->end(), batch.begin(), batch.end());
    // SoA mirror, copy-on-write exactly like `pts`: extend the base epoch's
    // store by the batch (or transpose from scratch when there is none).
    auto store = base != nullptr && base->store != nullptr
                     ? std::make_shared<PointStore<D>>(*base->store, batch)
                     : std::make_shared<PointStore<D>>(*pts);

    CoordBounds<D> bounds = coord_bounds<D>(*pts);
    const bool bounds_grew =
        base != nullptr && !engine_detail::bounds_equal<D>(bounds, base->bounds);
    const Point<D> interior =
        base != nullptr ? base->interior : centroid<D>(pts->data(), D + 1);

    const std::size_t seed_facets = base != nullptr ? base->facets.size() : 0;
    std::size_t expected =
        params_.expected_keys != 0
            ? params_.expected_keys
            : 4 * static_cast<std::size_t>(D) * (seed_facets + batch.size()) +
                  64;

    std::shared_ptr<HullSnapshot<D>> built =
        attempt_loop(expected, res, [&](auto& map) {
          return run_attempt(*pts, store.get(), first_new, bounds,
                             bounds_grew, interior, base.get(), map, res);
        });
    if (built == nullptr) {
      reset_working_state();
      return fail_batch(res);
    }

    // --- Commit: stamp the epoch and publish. Everything the snapshot
    // references is written before the cell's release unlock; readers pair
    // with its acquire lock, so a reader can never observe a half-built
    // epoch. A batch that only appends shares its base's tombstone mask.
    built->epoch = (base != nullptr ? base->epoch : 0) + 1;
    built->points = pts;
    built->store = store;
    built->deleted = base != nullptr ? base->deleted : nullptr;
    built->live_points =
        (base != nullptr ? base->live_points : 0) + batch.size();
    res.epoch = built->epoch;
    res.hull_facets = built->facets.size();
    res.live_points = built->live_points;
    res.ok = true;
    commit_snapshot(std::move(built), res, start);
    return res;
  }

  // Delete a batch of points by id, publishing a new epoch on success. Ids
  // must be in range, alive, and mutually distinct (kBadInput otherwise —
  // nothing is deleted). Deleting points that are vertices of the current
  // hull re-closes the hole by change propagation (file comment); deleting
  // interior points is a tombstone-only commit. Requires a published
  // snapshot. Rollback-on-failure exactly as insert_batch.
  BatchResult delete_batch(const std::vector<PointId>& deletions) {
    return update_batch(deletions, PointSet<D>());
  }

  // Atomic delete + append: one epoch in which `deletions` disappear and
  // `moved` joins the point sequence (a point move is delete_batch of the
  // old id + insert of the new position, without readers ever seeing the
  // intermediate hull). With no deletions this is insert_batch.
  BatchResult update_batch(const std::vector<PointId>& deletions,
                           const PointSet<D>& moved) {
    if (deletions.empty()) return insert_batch(moved);
    const auto start = std::chrono::steady_clock::now();
    BatchResult res;
    res.batch_points = moved.size();
    std::shared_ptr<const HullSnapshot<D>> base = snapshot();
    if (base == nullptr) {
      res.status = HullStatus::kBadInput;  // no ids exist before epoch 1
      return fail_batch(res);
    }
    if (!all_finite<D>(moved)) {
      res.status = HullStatus::kBadInput;
      return fail_batch(res);
    }
    const std::size_t old_n = base->points->size();
    // New tombstone mask: copy-extend the base's, then validate + mark the
    // batch (duplicates within the batch hit the already-marked check).
    auto mask = std::make_shared<std::vector<std::uint8_t>>(old_n, 0);
    if (base->deleted != nullptr) {
      std::copy(base->deleted->begin(), base->deleted->end(), mask->begin());
    }
    for (PointId id : deletions) {
      if (id >= old_n || (*mask)[id] != 0) {
        res.status = HullStatus::kBadInput;
        return fail_batch(res);
      }
      (*mask)[id] = 1;
    }
    res.deleted_points = deletions.size();

    // Candidate point sequence: unchanged (and shared) for pure deletes,
    // copy-on-write append otherwise — a failed batch drops the copy.
    std::shared_ptr<const PointSet<D>> pts = base->points;
    if (!moved.empty()) {
      auto copy = std::make_shared<PointSet<D>>(*base->points);
      copy->insert(copy->end(), moved.begin(), moved.end());
      pts = std::move(copy);
    }
    const PointId first_new = static_cast<PointId>(old_n);
    const std::size_t n = pts->size();
    // SoA mirror: a pure delete shares the base epoch's store (indices are
    // tombstone-stable), an update COW-extends it by the moved points.
    std::shared_ptr<const PointStore<D>> store;
    if (moved.empty() && base->store != nullptr) {
      store = base->store;
    } else if (base->store != nullptr) {
      store = std::make_shared<PointStore<D>>(*base->store, moved);
    } else {
      store = std::make_shared<PointStore<D>>(*pts);
    }

    // Bounds only ever widen (deleted coordinates keep their contribution:
    // plane error bounds stay conservative, and surviving cached planes
    // stay valid whenever the bounds are unchanged).
    const CoordBounds<D> bounds = moved.empty()
        ? base->bounds
        : engine_detail::merge_bounds<D>(base->bounds,
                                         coord_bounds<D>(moved));
    const bool bounds_grew =
        !engine_detail::bounds_equal<D>(bounds, base->bounds);

    MutationPlan plan;
    res.status = build_mutation_plan(*pts, first_new, n, *base, *mask, plan);
    if (res.status != HullStatus::kOk) return fail_batch(res);
    res.tombstoned_facets = plan.tombstoned_facets;
    res.closure_facets = plan.closure_facets;
    res.full_rebuild = plan.full_rebuild;

    std::size_t expected =
        params_.expected_keys != 0
            ? params_.expected_keys
            : 4 * static_cast<std::size_t>(D) *
                      (plan.seeds.size() + moved.size() +
                       (plan.full_rebuild ? plan.candidates.size()
                                          : 4 * plan.tombstoned_facets)) +
                  64;

    std::shared_ptr<HullSnapshot<D>> built =
        attempt_loop(expected, res, [&](auto& map) {
          return run_mutation_attempt(*pts, store.get(), first_new, n, bounds,
                                      bounds_grew, *base, plan, map, res);
        });
    if (built == nullptr) {
      reset_working_state();
      return fail_batch(res);
    }

    built->epoch = base->epoch + 1;
    built->points = pts;
    built->store = store;
    built->deleted = mask;
    built->live_points =
        base->live_points - deletions.size() + moved.size();
    res.epoch = built->epoch;
    res.hull_facets = built->facets.size();
    res.live_points = built->live_points;
    res.ok = true;
    commit_snapshot(std::move(built), res, start);
    return res;
  }

 private:
  struct Call {
    FacetId t1;
    RidgeKey<D> r;
    FacetId t2;
  };

  template <class Map>
  static std::unique_ptr<Map> make_map(std::size_t expected_keys) {
    if (PARHULL_FAULT_POINT(kAllocation)) return nullptr;
    try {
      return std::make_unique<Map>(expected_keys);
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
  }

  BatchResult& fail_batch(BatchResult& res) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed_batches += 1;
    return res;
  }

  void reset_working_state() {
    pts_ = nullptr;
    store_ = nullptr;
    pool_.reset();
    arena_.reset();
    map_.reset();
    fallback_map_.reset();
    fail_.reset();
    tests_.reset();
    max_depth_.store(0, std::memory_order_relaxed);
    max_round_.store(0, std::memory_order_relaxed);
  }

  void fail(HullStatus s) { fail_.mark(s); }
  bool failed() const { return fail_.failed(); }

  // One attempt at the batch: seed, run ProcessRidge to quiescence, build
  // the (unpublished) snapshot. Returns null unless res.status == kOk.
  template <class Map>
  std::shared_ptr<HullSnapshot<D>> run_attempt(
      const PointSet<D>& pts, const PointStore<D>* store, PointId first_new,
      const CoordBounds<D>& bounds, bool bounds_grew, const Point<D>& interior,
      const HullSnapshot<D>* base, Map& map, BatchResult& res) {
    res.facets_created = 0;
    res.visibility_tests = 0;
    const std::size_t n = pts.size();
    pts_ = &pts;
    store_ = store;
    pool_ = std::make_unique<ConcurrentPool<Facet<D>>>();
    const int workers = Scheduler::get().num_workers();
    arena_ = std::make_unique<ConflictArena>(workers);
    bounds_ = bounds;
    interior_ = interior;
    tests_.resize(workers);

    std::vector<Call> seeds;
    std::size_t seed_count = 0;
    if (base == nullptr) {
      // --- First batch: initial simplex + its ridges, exactly as a fresh
      // Algorithm 3 run (core/parallel_hull.h lines 2–6).
      std::array<FacetId, static_cast<std::size_t>(D) + 1> initial{};
      for (int k = 0; k <= D; ++k) {
        FacetId id = 0;
        if (!pool_->try_allocate(id)) {
          res.status = HullStatus::kPoolExhausted;
          return nullptr;
        }
        initial[static_cast<std::size_t>(k)] = id;
        Facet<D>& f = (*pool_)[id];
        int out = 0;
        for (int v = 0; v <= D; ++v) {
          if (v != k) f.vertices[static_cast<std::size_t>(out++)] =
              static_cast<PointId>(v);
        }
        if (!orient_outward<D>(pts, f.vertices, interior_)) {
          res.status = HullStatus::kDegenerateInput;
          return nullptr;
        }
        f.plane = make_plane<D>(pts, f.vertices, bounds_);
        f.depth = 0;
        f.round = 0;
      }
      parallel_for(0, static_cast<std::size_t>(D) + 1, [&](std::size_t k) {
        Facet<D>& f = (*pool_)[initial[k]];
        f.conflicts = filter_visible_range<D>(
            PointsView<D>(pts, store_), f.plane, f.vertices,
            static_cast<PointId>(D + 1),
            n - (static_cast<std::size_t>(D) + 1), *arena_, filter_grain(),
            params_.controller);
        tests_.add(Scheduler::worker_id(),
                   n - (static_cast<std::size_t>(D) + 1));
      }, 1);
      for (int i = 0; i <= D; ++i) {
        for (int j = i + 1; j <= D; ++j) {
          std::array<PointId, static_cast<std::size_t>(D - 1)> ids{};
          int out = 0;
          for (int v = 0; v <= D; ++v) {
            if (v != i && v != j) ids[static_cast<std::size_t>(out++)] =
                static_cast<PointId>(v);
          }
          seeds.push_back(Call{initial[static_cast<std::size_t>(i)],
                               RidgeKey<D>::from_unsorted(ids),
                               initial[static_cast<std::size_t>(j)]});
        }
      }
      seed_count = static_cast<std::size_t>(D) + 1;
    } else {
      // --- Incremental batch: seed the pool with the surviving facets of
      // the published epoch. Sequential allocation keeps pool id ==
      // snapshot index, so the snapshot's adjacency doubles as the seed
      // ridge pairing (each ridge seeded once, by its lower-index facet).
      seed_count = base->facets.size();
      for (std::size_t i = 0; i < seed_count; ++i) {
        FacetId id = 0;
        if (!pool_->try_allocate(id)) {
          res.status = HullStatus::kPoolExhausted;
          return nullptr;
        }
        PARHULL_DCHECK(id == static_cast<FacetId>(i));
        Facet<D>& f = (*pool_)[id];
        f.vertices = base->facets[i].vertices;
        // The cached hyperplane's error bound covers every point within
        // the bounds it was built with; a batch that widens the coordinate
        // bounds invalidates it, so rebuild. Certified signs never change
        // (only the certain/uncertain split does), keeping the facet set
        // identical to a one-shot run built with full-set bounds.
        f.plane = bounds_grew
                      ? make_plane<D>(pts, f.vertices, bounds_)
                      : base->facets[i].plane;
        f.depth = 0;
        f.round = 0;
      }
      parallel_for(0, seed_count, [&](std::size_t i) {
        Facet<D>& f = (*pool_)[static_cast<FacetId>(i)];
        f.conflicts = filter_visible_range<D>(
            PointsView<D>(pts, store_), f.plane, f.vertices, first_new,
            n - first_new, *arena_, filter_grain(), params_.controller);
        tests_.add(Scheduler::worker_id(), n - first_new);
      }, 1);
      for (std::size_t i = 0; i < seed_count; ++i) {
        const SnapshotFacet<D>& f = base->facets[i];
        for (int k = 0; k < D; ++k) {
          const std::uint32_t other = f.neighbors[static_cast<std::size_t>(k)];
          if (static_cast<std::uint32_t>(i) < other) {
            std::array<PointId, static_cast<std::size_t>(D - 1)> ids{};
            int out = 0;
            for (int v = 0; v < D; ++v) {
              if (v != k) ids[static_cast<std::size_t>(out++)] =
                  f.vertices[static_cast<std::size_t>(v)];
            }
            seeds.push_back(Call{static_cast<FacetId>(i),
                                 RidgeKey<D>::from_unsorted(ids),
                                 static_cast<FacetId>(other)});
          }
        }
      }
    }

    parallel_for(0, seeds.size(), [&](std::size_t s) {
      process_ridge(map, seeds[s].t1, seeds[s].r, seeds[s].t2, 1);
    }, 1);
    return finish_attempt(map, res,
                          base == nullptr
                              ? 0
                              : static_cast<std::uint64_t>(seed_count),
                          bounds);
  }

  // Shared attempt tail: fold failures (same final-poll protocol as
  // ParallelHull — a stop that landed in the last filter with no
  // ProcessRidge left to observe it still fails the attempt, so truncated
  // conflict lists can never influence a committed epoch), account, and
  // materialize the unpublished snapshot. `seed_copies` is how many pool
  // entries are verbatim copies of the previous epoch's facets — everything
  // else counts as created this epoch (the first batch's initial simplex
  // and a mutation's closure/rebuild facets count as created, matching
  // ParallelHull's accounting).
  template <class Map>
  std::shared_ptr<HullSnapshot<D>> finish_attempt(Map& map, BatchResult& res,
                                                  std::uint64_t seed_copies,
                                                  const CoordBounds<D>& bounds) {
    if (map.failed()) fail(map.failure());
    if (!failed() &&
        PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
      fail(params_.controller->stop_status());
    }
    res.visibility_tests = tests_.total();
    res.facets_created = pool_->size() - seed_copies;
    res.dependence_depth = max_depth_.load(std::memory_order_relaxed);
    res.max_round = max_round_.load(std::memory_order_relaxed);
    if (failed()) {
      res.status = fail_.status();
      return nullptr;
    }
    auto built = build_snapshot(bounds);
    if (built == nullptr) {
      // Allocation failure (real or injected) while materializing the
      // snapshot: transient, handled by the regrow/retry loop.
      res.status = HullStatus::kCapacityExceeded;
      return nullptr;
    }
    res.status = HullStatus::kOk;
    return built;
  }

  // Regrow/fallback driver shared by insert and mutation batches: run one
  // attempt per ridge-table size, doubling expected_keys while the attempt
  // reports kCapacityExceeded, then once more on the unbounded chained
  // backend. Returns the built (unpublished) snapshot, or null with
  // res.status set to the terminal failure.
  template <class RunFn>
  std::shared_ptr<HullSnapshot<D>> attempt_loop(std::size_t expected,
                                                BatchResult& res,
                                                RunFn&& run) {
    std::shared_ptr<HullSnapshot<D>> built;
    for (int attempt = 0;; ++attempt) {
      // Between regrow attempts: don't start another expensive attempt if
      // the batch was cancelled or its deadline expired during the last one.
      if (PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
        res.status = params_.controller->stop_status();
        res.regrows = static_cast<std::uint32_t>(attempt);
        reset_working_state();
        return nullptr;
      }
      reset_working_state();
      map_ = make_map<MapT<D>>(expected);
      if (map_ == nullptr || map_->failed()) {
        res.status = HullStatus::kCapacityExceeded;
      } else {
        built = run(*map_);
      }
      res.regrows = static_cast<std::uint32_t>(attempt);
      if (res.status != HullStatus::kCapacityExceeded ||
          attempt >= params_.max_regrows) {
        break;
      }
      if (expected > std::numeric_limits<std::size_t>::max() / 2) break;
      expected *= 2;
    }
    if (res.status == HullStatus::kCapacityExceeded &&
        params_.chained_fallback &&
        !std::is_same_v<MapT<D>, RidgeMapChained<D>>) {
      const std::uint32_t regrows = res.regrows;
      reset_working_state();
      fallback_map_ = make_map<RidgeMapChained<D>>(expected);
      if (fallback_map_ != nullptr) {
        built = run(*fallback_map_);
        res.regrows = regrows;
        res.used_chained_fallback = true;
      }
    }
    return res.status == HullStatus::kOk ? built : nullptr;
  }

  // Publish a built epoch and fold its result into the aggregate stats.
  // The whole per-epoch working state (pool of seed copies + created
  // facets, conflict arena, ridge map) dies here: old epochs keep only
  // their snapshot, so dead facets never accumulate across batches.
  void commit_snapshot(std::shared_ptr<HullSnapshot<D>> built,
                       const BatchResult& res,
                       std::chrono::steady_clock::time_point start) {
    const std::uint64_t pool_size = pool_ != nullptr ? pool_->size() : 0;
    const std::uint64_t total_points = built->points->size();
    const std::uint64_t live_points = built->live_points;
    reset_working_state();
    PARHULL_SCHEDULE_POINT();  // snapshot built, not yet visible to readers
    snapshot_.store(std::shared_ptr<const HullSnapshot<D>>(std::move(built)));
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.epoch = res.epoch;
    stats_.batches += 1;
    stats_.points = total_points;
    stats_.live_points = live_points;
    stats_.hull_facets = res.hull_facets;
    stats_.facets_created_total += res.facets_created;
    stats_.visibility_tests_total += res.visibility_tests;
    stats_.regrows_total += res.regrows;
    stats_.last_batch_points = res.batch_points;
    stats_.last_deleted_points = res.deleted_points;
    stats_.last_pool_size = pool_size;
    stats_.last_batch_ms = elapsed;
    if (res.deleted_points != 0) {
      stats_.delete_batches += 1;
      stats_.points_deleted_total += res.deleted_points;
      if (res.full_rebuild) stats_.full_rebuilds += 1;
    }
  }

  // Seed plan of a delete/update batch, built once per batch (independent
  // of ridge-table capacity, so regrow attempts reuse it). The seed facets
  // form a closed hull — conv(K) on the surviving hull vertices, or a
  // fresh simplex of live points — and by the Clarkson–Shor invariant the
  // state "seeds + their filtered conflict lists" is a valid intermediate
  // state of a one-shot run over the live points, so ProcessRidge driven
  // to quiescence from the seed ridges yields the hull of the survivors.
  struct MutationPlan {
    static constexpr std::uint32_t kNewFacet = 0xFFFFFFFFu;
    struct Seed {
      std::array<PointId, static_cast<std::size_t>(D)> vertices{};  // oriented
      // Index of the identical base facet (cached hyperplane reused, only
      // the appended range filtered), or kNewFacet for a closure/rebuild
      // facet (fresh plane, full candidate filter).
      std::uint32_t base_index = kNewFacet;
    };
    std::vector<Seed> seeds;
    // Ascending ids every kNewFacet seed filters: live points that were not
    // hull vertices, then the whole appended range. Live former hull
    // vertices are already inserted (they are the seed vertices), and
    // points strictly inside conv(K) stay interior forever — the filter
    // proves that per candidate.
    std::vector<PointId> candidates;
    Point<D> interior{};
    std::size_t tombstoned_facets = 0;  // base facets naming a dead vertex
    std::size_t closure_facets = 0;     // conv(K) facets absent from base
    std::size_t surviving_seeds = 0;    // seeds with base_index != kNewFacet
    bool full_rebuild = false;
  };

  // Build the seed plan: collect the deleted points' conflict frontier,
  // derive K, rebuild conv(K) (SequentialHull on the compacted survivors),
  // and classify its facets against the base snapshot. Any non-kOk return
  // fails the batch before an attempt starts.
  HullStatus build_mutation_plan(const PointSet<D>& pts, PointId first_new,
                                 std::size_t n, const HullSnapshot<D>& base,
                                 const std::vector<std::uint8_t>& mask,
                                 MutationPlan& plan) {
    const std::size_t old_n = first_new;
    // Frontier = base facets whose certificate names a dead vertex. Live
    // vertices of ALL base facets (frontier included — a vertex can lose
    // every incident facet and still bound the new hull) form K.
    std::vector<std::uint8_t> is_vertex(old_n, 0);
    std::size_t holes = 0;
    for (const SnapshotFacet<D>& f : base.facets) {
      bool hit = false;
      for (PointId v : f.vertices) {
        if (mask[v] != 0) {
          hit = true;
        } else {
          is_vertex[v] = 1;
        }
      }
      if (hit) ++holes;
    }
    plan.tombstoned_facets = holes;

    if (holes == 0) {
      // No hull vertex died: every facet certificate survives and the hull
      // is unchanged. Seed the whole base; only appended points conflict.
      plan.interior = base.interior;
      plan.seeds.resize(base.facets.size());
      for (std::size_t i = 0; i < base.facets.size(); ++i) {
        plan.seeds[i].vertices = base.facets[i].vertices;
        plan.seeds[i].base_index = static_cast<std::uint32_t>(i);
      }
      plan.surviving_seeds = plan.seeds.size();
      return HullStatus::kOk;
    }

    // --- Change propagation: conv(K) on the compacted surviving vertices.
    std::vector<PointId> korig;
    for (PointId v = 0; v < static_cast<PointId>(old_n); ++v) {
      if (is_vertex[v] != 0) korig.push_back(v);
    }
    PointSet<D> kpts;
    kpts.reserve(korig.size());
    for (PointId v : korig) kpts.push_back(pts[v]);
    bool k_ok = kpts.size() >= static_cast<std::size_t>(D) + 1 &&
                prepare_input_tracked<D>(kpts, korig);
    SequentialHull<D> khull;
    typename SequentialHull<D>::Result kres;
    if (k_ok) {
      kres = khull.run(kpts, params_.controller);
      if (!kres.ok) {
        if (kres.status != HullStatus::kDegenerateInput) return kres.status;
        k_ok = false;  // degenerate K: fall through to the full re-seed
      }
    }
    if (k_ok) {
      // Interior reference: centroid of ALL K points — a convex combination
      // with every weight positive over a set containing D+1 affinely
      // independent points (prepare proved that), so strictly inside
      // conv(K), hence strictly inside every later hull of this epoch.
      // Using all of K rather than the first D+1 also centers the
      // inscribed-ball candidate prune (run_mutation_attempt): a centroid
      // from one corner of K would leave the ball — and the prune —
      // degenerately small.
      plan.interior = centroid<D>(kpts.data(), kpts.size());
      const auto base_tuples = canonical_snapshot_tuples<D>(base);
      for (FacetId fid : kres.hull) {
        const Facet<D>& kf = khull.facet(fid);
        typename MutationPlan::Seed s;
        for (int v = 0; v < D; ++v) {
          s.vertices[static_cast<std::size_t>(v)] =
              korig[kf.vertices[static_cast<std::size_t>(v)]];
        }
        std::sort(s.vertices.begin(), s.vertices.end());
        auto it = std::lower_bound(base_tuples.begin(), base_tuples.end(),
                                   s.vertices);
        if (it != base_tuples.end() && *it == s.vertices) {
          // Facet of the old hull: keep its orientation + cached plane.
          // Old live points are all beneath it, so only the appended
          // range needs filtering.
          s.base_index =
              static_cast<std::uint32_t>(it - base_tuples.begin());
          s.vertices = base.facets[s.base_index].vertices;
          ++plan.surviving_seeds;
        } else {
          // Closure facet sealing the hole left by the frontier.
          if (!orient_outward<D>(pts, s.vertices, plan.interior)) {
            return HullStatus::kDegenerateInput;
          }
          ++plan.closure_facets;
        }
        plan.seeds.push_back(s);
      }
      plan.candidates.reserve(old_n - korig.size() + (n - old_n));
      for (PointId v = 0; v < static_cast<PointId>(old_n); ++v) {
        if (mask[v] == 0 && is_vertex[v] == 0) plan.candidates.push_back(v);
      }
      for (PointId v = first_new; v < static_cast<PointId>(n); ++v) {
        plan.candidates.push_back(v);
      }
      return HullStatus::kOk;
    }

    // --- Full re-seed: the survivors no longer support conv(K) (every
    // hull vertex died, or K went degenerate). Seed a fresh simplex of
    // live points — first-batch machinery with arbitrary ids.
    plan.full_rebuild = true;
    std::vector<PointId> alive;
    for (PointId v = 0; v < static_cast<PointId>(old_n); ++v) {
      if (mask[v] == 0) alive.push_back(v);
    }
    for (PointId v = first_new; v < static_cast<PointId>(n); ++v) {
      alive.push_back(v);
    }
    std::vector<PointId> simplex;
    std::vector<const Point<D>*> probe;
    for (PointId v : alive) {
      if (simplex.size() == static_cast<std::size_t>(D) + 1) break;
      probe.clear();
      for (PointId c : simplex) probe.push_back(&pts[c]);
      probe.push_back(&pts[v]);
      if (affinely_independent<D>(probe)) simplex.push_back(v);
    }
    if (simplex.size() < static_cast<std::size_t>(D) + 1) {
      return HullStatus::kDegenerateInput;  // covers the all-deleted case
    }
    std::array<Point<D>, static_cast<std::size_t>(D) + 1> simplex_pts{};
    for (int k = 0; k <= D; ++k) {
      simplex_pts[static_cast<std::size_t>(k)] =
          pts[simplex[static_cast<std::size_t>(k)]];
    }
    plan.interior = centroid<D>(simplex_pts.data(), D + 1);
    for (int k = 0; k <= D; ++k) {
      typename MutationPlan::Seed s;
      int out = 0;
      for (int v = 0; v <= D; ++v) {
        if (v != k) {
          s.vertices[static_cast<std::size_t>(out++)] =
              simplex[static_cast<std::size_t>(v)];
        }
      }
      if (!orient_outward<D>(pts, s.vertices, plan.interior)) {
        return HullStatus::kDegenerateInput;
      }
      plan.seeds.push_back(s);
    }
    for (PointId v : alive) {
      bool used = false;
      for (PointId c : simplex) used = used || c == v;
      if (!used) plan.candidates.push_back(v);
    }
    return HullStatus::kOk;
  }

  // One attempt at a delete/update batch: seed the pool from the plan,
  // filter, pair the seed ridges by key (the plan's facets have no wired
  // adjacency yet), run ProcessRidge to quiescence, build the snapshot.
  template <class Map>
  std::shared_ptr<HullSnapshot<D>> run_mutation_attempt(
      const PointSet<D>& pts, const PointStore<D>* store, PointId first_new,
      std::size_t n, const CoordBounds<D>& bounds, bool bounds_grew,
      const HullSnapshot<D>& base, const MutationPlan& plan, Map& map,
      BatchResult& res) {
    res.facets_created = 0;
    res.visibility_tests = 0;
    pts_ = &pts;
    store_ = store;
    pool_ = std::make_unique<ConcurrentPool<Facet<D>>>();
    const int workers = Scheduler::get().num_workers();
    arena_ = std::make_unique<ConflictArena>(workers);
    bounds_ = bounds;
    interior_ = plan.interior;
    tests_.resize(workers);

    const std::size_t seed_count = plan.seeds.size();
    for (std::size_t i = 0; i < seed_count; ++i) {
      FacetId id = 0;
      if (!pool_->try_allocate(id)) {
        res.status = HullStatus::kPoolExhausted;
        return nullptr;
      }
      PARHULL_DCHECK(id == static_cast<FacetId>(i));
      Facet<D>& f = (*pool_)[id];
      const typename MutationPlan::Seed& s = plan.seeds[i];
      f.vertices = s.vertices;
      f.plane = (s.base_index != MutationPlan::kNewFacet && !bounds_grew)
                    ? base.facets[s.base_index].plane
                    : make_plane<D>(pts, f.vertices, bounds_);
      f.depth = 0;
      f.round = 0;
    }
    // Inscribed-ball prune for the closure-facet candidate sweep. Every
    // kNewFacet seed filters the whole candidate list, so a delete's cost
    // is closure_facets x candidates — dominated by deep-interior points
    // that no facet can possibly see. A candidate q is certifiably
    // invisible from closure facet f when S_f(q) < -err_f; since S_f is
    // affine, |q - interior| < (-S_f(interior) - 2 err_f) / |n_f| implies
    // exactly that (one err absorbs the evaluation at the interior point,
    // the other keeps the verdict outside f's uncertainty band). Candidates
    // inside the ball of the minimum such radius are dropped ONCE, with
    // relative margins dominating every rounding step, so the surviving
    // conflict lists — and therefore the committed facet set — are
    // identical to the unpruned run's.
    const PointId* cand = plan.candidates.data();
    std::size_t cand_n = plan.candidates.size();
    std::vector<PointId> pruned;
    if (cand_n != 0) {
      double r = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < seed_count; ++i) {
        if (plan.seeds[i].base_index != MutationPlan::kNewFacet) continue;
        const Plane<D>& pl = (*pool_)[static_cast<FacetId>(i)].plane;
        double s = -pl.offset;
        double n2 = 0;
        for (int j = 0; j < D; ++j) {
          s += pl.normal[static_cast<std::size_t>(j)] * plan.interior[j];
          n2 += pl.normal[static_cast<std::size_t>(j)] *
                pl.normal[static_cast<std::size_t>(j)];
        }
        const double nn = std::sqrt(n2) * (1 + 1e-12);
        r = std::min(r, (-s - 2 * pl.err) / nn);
      }
      if (std::isfinite(r) && r > 0) {
        const double rs = r * (1 - 1e-9);
        const double r2_safe = rs * rs;
        pruned.reserve(cand_n);
        for (std::size_t c = 0; c < cand_n; ++c) {
          const Point<D>& q = pts[plan.candidates[c]];
          double d2 = 0;
          for (int j = 0; j < D; ++j) {
            const double dj = q[j] - plan.interior[j];
            d2 += dj * dj;
          }
          if (!(d2 * (1 + 1e-9) < r2_safe)) {
            pruned.push_back(plan.candidates[c]);
          }
        }
        cand = pruned.data();
        cand_n = pruned.size();
      }
    }

    parallel_for(0, seed_count, [&](std::size_t i) {
      Facet<D>& f = (*pool_)[static_cast<FacetId>(i)];
      const PointsView<D> view(pts, store_);
      if (plan.seeds[i].base_index != MutationPlan::kNewFacet) {
        f.conflicts = filter_visible_range<D>(
            view, f.plane, f.vertices, first_new, n - first_new, *arena_,
            filter_grain(), params_.controller);
        tests_.add(Scheduler::worker_id(), n - first_new);
      } else {
        f.conflicts = filter_visible_ids<D>(view, f.plane, f.vertices, cand,
                                            cand_n, *arena_, filter_grain(),
                                            params_.controller);
        tests_.add(Scheduler::worker_id(), cand_n);
      }
    }, 1);

    std::vector<Call> seeds;
    {
      std::map<RidgeKey<D>, FacetId> pending;
      for (std::size_t i = 0; i < seed_count; ++i) {
        const Facet<D>& f = (*pool_)[static_cast<FacetId>(i)];
        for (int k = 0; k < D; ++k) {
          RidgeKey<D> key = f.ridge_omitting(k);
          auto it = pending.find(key);
          if (it == pending.end()) {
            pending.emplace(key, static_cast<FacetId>(i));
          } else {
            seeds.push_back(Call{it->second, key, static_cast<FacetId>(i)});
            pending.erase(it);
          }
        }
      }
      if (!pending.empty()) {
        // Open seed surface: conv(K) was not a closed hull (degenerate
        // survivors that slipped past the exact checks). Roll back.
        res.status = HullStatus::kDegenerateInput;
        return nullptr;
      }
    }

    parallel_for(0, seeds.size(), [&](std::size_t s) {
      process_ridge(map, seeds[s].t1, seeds[s].r, seeds[s].t2, 1);
    }, 1);
    return finish_attempt(map, res, plan.surviving_seeds, bounds);
  }

  // ProcessRidge, cases 1–4 of Section 5.2 — the same machinery as
  // core/parallel_hull.h, operating on the epoch's working pool. Conflict
  // lists only ever hold this batch's points, so pivots and priorities are
  // those of the equivalent one-shot run.
  template <class Map>
  void process_ridge(Map& map, FacetId t1, RidgeKey<D> r, FacetId t2,
                     std::uint32_t round) {
    if (failed()) return;
    if (PARHULL_RUN_POLL(params_.controller, Scheduler::worker_id())) {
      fail(params_.controller->stop_status());
      return;
    }
    const PointSet<D>& pts = *pts_;
    PointId p1, p2;
    while (true) {
      p1 = (*pool_)[t1].pivot();
      p2 = (*pool_)[t2].pivot();
      if (p1 == kInvalidPoint && p2 == kInvalidPoint) {
        return;  // case 1: ridge survives the batch
      }
      if (p1 == p2) {
        (*pool_)[t1].kill();  // case 2: the pivot buries ridge r
        (*pool_)[t2].kill();
        return;
      }
      if (p2 < p1) {
        std::swap(t1, t2);  // case 3: flip roles
        continue;
      }
      break;  // case 4
    }

    const PointId p = p1;
    Facet<D>& f1 = (*pool_)[t1];
    Facet<D>& f2 = (*pool_)[t2];
    FacetId tid = 0;
    if (!pool_->try_allocate(tid)) {
      fail(HullStatus::kPoolExhausted);
      return;
    }
    Facet<D>& t = (*pool_)[tid];
    for (int v = 0; v < D - 1; ++v) {
      t.vertices[static_cast<std::size_t>(v)] =
          r.v[static_cast<std::size_t>(v)];
    }
    t.vertices[static_cast<std::size_t>(D - 1)] = p;
    if (!orient_outward<D>(pts, t.vertices, interior_)) {
      t.kill();
      fail(HullStatus::kDegenerateInput);
      return;
    }
    t.plane = make_plane<D>(pts, t.vertices, bounds_);
    t.apex = p;
    t.support0 = t1;
    t.support1 = t2;
    t.depth = 1 + std::max(f1.depth, f2.depth);
    t.round = round;
    engine_detail::atomic_max_u32(max_depth_, t.depth);
    engine_detail::atomic_max_u32(max_round_, round);

    auto mf = merge_filter_conflicts<D>(f1.conflicts, f2.conflicts,
                                        PointsView<D>(pts, store_),
                                        t.plane, t.vertices, p, *arena_,
                                        filter_grain(), params_.controller);
    t.conflicts = mf.conflicts;
    tests_.add(Scheduler::worker_id(), mf.tests);
    f1.kill();

    Call calls[D];
    int pending = 0;
    for (int v = 0; v < D; ++v) {
      if (t.vertices[static_cast<std::size_t>(v)] == p) {
        calls[pending++] = Call{tid, r, t2};
      } else {
        RidgeKey<D> side = t.ridge_omitting(v);
        if (!map.insert_and_set(side, tid)) {
          FacetId other = map.get_value(side, tid);
          calls[pending++] = Call{tid, side, other};
        }
      }
    }
    if (map.failed()) {
      fail(map.failure());
      return;
    }
    spawn(map, calls, pending, round + 1);
  }

  template <class Map>
  void spawn(Map& map, Call* calls, int count, std::uint32_t round) {
    if (count == 0) return;
    if (count == 1) {
      process_ridge(map, calls[0].t1, calls[0].r, calls[0].t2, round);
      return;
    }
    int half = count / 2;
    par_do([&] { spawn(map, calls, half, round); },
           [&] { spawn(map, calls + half, count - half, round); });
  }

  // Materialize the committed epoch: alive facets in canonical order
  // (ascending sorted-vertex tuples) with ridge adjacency wired. Null on
  // allocation failure (including an injected one — the snapshot is the
  // one allocation left after the attempt itself succeeded).
  std::shared_ptr<HullSnapshot<D>> build_snapshot(
      const CoordBounds<D>& bounds) {
    if (PARHULL_FAULT_POINT(kAllocation)) return nullptr;
    try {
      auto snap = std::make_shared<HullSnapshot<D>>();
      snap->bounds = bounds;
      snap->interior = interior_;
      struct Keyed {
        std::array<PointId, static_cast<std::size_t>(D)> key;
        FacetId id;
        bool operator<(const Keyed& o) const { return key < o.key; }
      };
      std::vector<Keyed> order;
      for (FacetId id = 0; id < pool_->size(); ++id) {
        const Facet<D>& f = (*pool_)[id];
        if (f.alive()) order.push_back({canonical_vertices<D>(f), id});
      }
      std::sort(order.begin(), order.end());
      snap->facets.resize(order.size());
      std::map<RidgeKey<D>, std::pair<std::uint32_t, int>> ridge_pairs;
      for (std::size_t i = 0; i < order.size(); ++i) {
        SnapshotFacet<D>& sf = snap->facets[i];
        const Facet<D>& f = (*pool_)[order[i].id];
        sf.vertices = f.vertices;
        sf.plane = f.plane;
        for (int k = 0; k < D; ++k) {
          RidgeKey<D> key = f.ridge_omitting(k);
          auto it = ridge_pairs.find(key);
          if (it == ridge_pairs.end()) {
            ridge_pairs.emplace(key,
                                std::pair<std::uint32_t, int>(
                                    static_cast<std::uint32_t>(i), k));
          } else {
            sf.neighbors[static_cast<std::size_t>(k)] = it->second.first;
            snap->facets[it->second.first]
                .neighbors[static_cast<std::size_t>(it->second.second)] =
                static_cast<std::uint32_t>(i);
            ridge_pairs.erase(it);
          }
        }
      }
      // A committed hull is closed: every ridge pairs exactly two facets.
      PARHULL_CHECK_MSG(ridge_pairs.empty(),
                        "engine snapshot: unpaired hull ridge");
      return snap;
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
  }

  std::size_t filter_grain() const {
    return params_.parallel_filter ? params_.filter_grain : 0;
  }

  Params params_;
  engine_detail::SnapshotCell<D> snapshot_;

  // Per-batch working state, dropped on commit or rollback.
  const PointSet<D>* pts_ = nullptr;
  const PointStore<D>* store_ = nullptr;  // SoA mirror of *pts_ (not owned)
  std::unique_ptr<ConcurrentPool<Facet<D>>> pool_;
  std::unique_ptr<ConflictArena> arena_;
  std::unique_ptr<MapT<D>> map_;
  std::unique_ptr<RidgeMapChained<D>> fallback_map_;
  CoordBounds<D> bounds_{};
  Point<D> interior_{};
  detail::FailureLatch fail_;
  WorkerCounter tests_;
  std::atomic<std::uint32_t> max_depth_{0};
  std::atomic<std::uint32_t> max_round_{0};

  mutable std::mutex stats_mu_;
  EngineStats stats_;
};

}  // namespace parhull
