// Request batcher: the concurrency front-end of the batch-dynamic engine
// (docs/ENGINE.md).
//
// Any number of producer threads submit() point batches, submit_delete()
// id batches, or submit_update() atomic delete+insert pairs; a single
// writer thread drains the queue and coalesces EVERYTHING pending into one
// HullEngine::insert_batch / update_batch call per epoch — under load the
// batch size grows automatically and the per-point publication cost
// shrinks, the classic group-commit shape. Delete ids are validated per
// request against the current snapshot (and against ids other requests of
// the same round already claimed): an invalid request resolves kBadInput
// immediately and is excluded, so one bad id never poisons the coalesced
// batch. Readers never enter the queue at all: they take snapshot() (a
// lock-free acquire load) and run the engine/query.h kernels against it,
// so queries proceed at full speed while a batch is being inserted.
//
// Each coalesced batch runs under a Supervisor (parallel/supervisor.h):
// per-attempt deadline, stall watchdog, and seeded-backoff retries of
// transient statuses with the same expected-keys escalation and
// post-stall worker-halving as supervised_run. All requests folded into a
// batch resolve with that batch's outcome (a failed batch rolls the
// engine back, so their points are NOT in the hull — resubmit if the
// status warrants it). cancel() aborts the in-flight batch through the
// supervisor's controller; close() stops intake, drains what was already
// accepted, and joins the writer (the destructor does the same).
//
// Threading note: the writer is a plain std::thread, not a scheduler pool
// thread, so parallel regions inside a batch run sequentially on it
// (parallel/scheduler.h treats foreign threads as single-worker). The
// batcher therefore trades intra-batch parallelism for insert/query
// overlap and group commit; call HullEngine::insert_batch directly from
// the scheduler's primary thread when raw parallel insert throughput
// matters (bench/bench_e16_dynamic.cpp measures that path).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "parhull/common/run_control.h"
#include "parhull/common/status.h"
#include "parhull/engine/engine.h"
#include "parhull/engine/journal.h"
#include "parhull/engine/snapshot.h"
#include "parhull/parallel/supervisor.h"
#include "parhull/testing/schedule_point.h"

namespace parhull {

namespace engine_detail {

// Minimal MPMC queue (mutex + condvar): many producers push, the writer
// drains everything pending in one swap. Factored out of RequestBatcher so
// the zero-cost probe can instantiate it — its schedule points mark the
// two publication edges the fuzzer perturbs (enqueue visible to the
// drainer; drain observing a racing close).
template <class T>
class RequestQueue {
 public:
  // False iff the queue is closed; the item is NOT consumed in that case
  // (the rvalue reference is only moved from on success).
  bool push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    PARHULL_SCHEDULE_POINT();  // enqueued, consumer not yet notified
    cv_.notify_one();
    return true;
  }

  // Block until items are pending or the queue is closed; move the whole
  // backlog into `out`. False only when closed AND drained — a close with
  // a backlog still hands the backlog out, so accepted work completes.
  bool wait_drain(std::vector<T>& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    PARHULL_SCHEDULE_POINT();  // woke: racing producers/close are decided
    if (items_.empty()) return false;
    out.swap(items_);
    items_.clear();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace engine_detail

template <int D, template <int> class MapT = RidgeMapCAS>
class RequestBatcher {
 public:
  using Engine = HullEngine<D, MapT>;

  struct Options {
    typename Engine::Params engine{};   // .controller is overridden per attempt
    SupervisorOptions supervisor{};     // deadline / watchdog / retry policy
  };

  // Resolved into every submit()'s future once its batch commits or fails.
  struct InsertOutcome {
    HullStatus status = HullStatus::kCancelled;
    bool ok = false;             // status == kOk: the points are in `epoch`
    std::uint64_t epoch = 0;     // epoch the coalesced batch published
    std::size_t batch_points = 0;    // points in the coalesced batch
    std::size_t deleted_points = 0;  // tombstones in the coalesced batch
    // Stable ids assigned to THIS request's points: [first_id, first_id +
    // inserted_points). The engine appends the coalesced batch in request
    // order and PointIds are insertion order, so the range is exact — the
    // one exception is the caller-side prepare_input reorder of the very
    // first batch, which permutes ids WITHIN the ranges of the requests it
    // coalesced (the set is still right). Meaningful only when ok.
    PointId first_id = kInvalidPoint;
    std::size_t inserted_points = 0;
    // Durability outcome of the round (kOk when no journal is attached).
    // kPersistFailed means the mutation IS in the hull but its log record
    // could not be appended — the caller decides how to surface that.
    HullStatus journal = HullStatus::kOk;
  };

  explicit RequestBatcher(Options opts = {})
      : opts_(opts), engine_(opts.engine), supervisor_(opts.supervisor) {
    writer_ = std::thread([this] { writer_loop(); });
  }

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  ~RequestBatcher() { close(); }

  // Enqueue points for the next batch. The same preparation contract as
  // HullEngine::insert_batch applies to whatever coalesced batch ends up
  // FIRST (prepare_input<D> on the union the caller submits before any
  // epoch exists). After close(), resolves immediately with kCancelled.
  std::future<InsertOutcome> submit(PointSet<D> points) {
    Request req;
    req.points = std::move(points);
    return enqueue(std::move(req));
  }

  // Enqueue point deletions for the next batch (HullEngine::delete_batch
  // semantics). Ids are validated by the writer against the snapshot the
  // coalesced batch starts from: out-of-range, already-deleted, or
  // duplicate ids (including ids another request of the same round claims)
  // resolve THIS request with kBadInput without touching the hull.
  std::future<InsertOutcome> submit_delete(std::vector<PointId> deletions) {
    Request req;
    req.deletions = std::move(deletions);
    return enqueue(std::move(req));
  }

  // Atomic delete + insert (HullEngine::update_batch semantics): one epoch
  // in which `deletions` disappear and `points` join the hull.
  std::future<InsertOutcome> submit_update(std::vector<PointId> deletions,
                                           PointSet<D> points) {
    Request req;
    req.deletions = std::move(deletions);
    req.points = std::move(points);
    return enqueue(std::move(req));
  }

  // Attach (or detach, with nullptr) the durability journal. The writer
  // thread calls journal->on_commit after every committed round and
  // journal->on_checkpoint for submit_checkpoint() requests. Attach BEFORE
  // traffic that must be journaled; recovery replays are performed with no
  // journal attached precisely so they are not re-logged.
  void set_journal(BatchJournal<D>* journal) {
    journal_.store(journal, std::memory_order_release);
  }

  // Enqueue a checkpoint request. The writer handles it after the round's
  // mutations commit, observing the freshest snapshot and the exact log
  // watermark (journal.h explains why this pairing is race-free). Resolves
  // kOk immediately when no journal is attached or nothing was published.
  std::future<InsertOutcome> submit_checkpoint() {
    Request req;
    req.checkpoint = true;
    return enqueue(std::move(req));
  }

  // Freshest published snapshot (see HullEngine::snapshot) — safe from any
  // thread, never blocks, never observes a partial epoch.
  std::shared_ptr<const HullSnapshot<D>> snapshot() const {
    return engine_.snapshot();
  }
  EngineStats stats() const { return engine_.stats(); }
  std::size_t pending_requests() const { return queue_.pending(); }

  // Cancel the batch currently running (first-wins with any deadline or
  // watchdog stop); its requests resolve kCancelled. Later batches run
  // normally — use close() to stop intake for good.
  void cancel() { supervisor_.controller().request_stop(HullStatus::kCancelled); }
  CancelToken token() { return supervisor_.token(); }

  // Per-attempt supervision log across all batches so far (AttemptRecord
  // per attempt, in order) — surfaced by hull_cli --stats-json.
  std::vector<AttemptRecord> attempt_log() const {
    std::lock_guard<std::mutex> lock(log_mu_);
    return attempt_log_;
  }

  // Stop intake, finish every batch already accepted, join the writer.
  // Idempotent; also run by the destructor.
  void close() {
    queue_.close();
    if (writer_.joinable()) writer_.join();
  }

 private:
  struct Request {
    PointSet<D> points;
    std::vector<PointId> deletions;
    bool checkpoint = false;  // a submit_checkpoint() marker, not a mutation
    std::promise<InsertOutcome> promise;
  };

  std::future<InsertOutcome> enqueue(Request req) {
    std::future<InsertOutcome> fut = req.promise.get_future();
    if (!queue_.push(std::move(req))) {
      req.promise.set_value(InsertOutcome{});  // closed: kCancelled default
    }
    return fut;
  }

  void writer_loop() {
    std::vector<Request> reqs;
    while (queue_.wait_drain(reqs)) {
      auto snap = engine_.snapshot();
      // Validate delete requests against the snapshot this round starts
      // from; `claimed` catches two requests deleting the same id. A
      // request is accepted or rejected WHOLE (update = atomic).
      std::vector<std::uint8_t> claimed(
          snap != nullptr ? snap->point_count() : 0, 0);
      PointSet<D> batch;
      std::vector<PointId> deletions;
      std::vector<Request*> accepted;
      std::vector<Request*> checkpoints;
      std::vector<std::size_t> offsets;  // accepted[i]'s points start here
      for (Request& r : reqs) {
        if (r.checkpoint) {
          checkpoints.push_back(&r);
          continue;
        }
        bool valid = true;
        for (PointId id : r.deletions) {
          if (snap == nullptr || id >= claimed.size() ||
              snap->is_deleted(id) || claimed[id] != 0) {
            valid = false;
            break;
          }
        }
        if (!valid) {
          InsertOutcome bad;
          bad.status = HullStatus::kBadInput;
          r.promise.set_value(bad);
          continue;
        }
        for (PointId id : r.deletions) claimed[id] = 1;
        deletions.insert(deletions.end(), r.deletions.begin(),
                         r.deletions.end());
        offsets.push_back(batch.size());
        batch.insert(batch.end(), r.points.begin(), r.points.end());
        accepted.push_back(&r);
      }
      if (accepted.empty()) {
        resolve_checkpoints(checkpoints);
        reqs.clear();
        continue;
      }
      const std::size_t seed_facets = snap ? snap->facet_count() : 0;
      const std::size_t auto_keys =
          opts_.engine.expected_keys != 0
              ? opts_.engine.expected_keys
              : 4 * static_cast<std::size_t>(D) * (seed_facets + batch.size()) +
                    64;
      // Same escalation shape as supervised_run: bigger table after
      // capacity pressure, fewer workers after a stall.
      HullStatus last = HullStatus::kOk;
      auto sup = supervisor_.run([&](RunController& ctrl, int attempt) {
        auto p = opts_.engine;
        p.controller = &ctrl;
        if (attempt > 0) {
          p.expected_keys = detail::escalate_keys(auto_keys, attempt);
        }
        engine_.set_params(p);
        std::optional<Scheduler::WorkerLimit> limit;
        if (attempt > 0 && last == HullStatus::kStalled) {
          limit.emplace(std::max(1, Scheduler::get().num_workers() / 2));
        }
        auto res = deletions.empty()
                       ? engine_.insert_batch(batch)
                       : engine_.update_batch(deletions, batch);
        last = res.status;
        return res;
      });
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        attempt_log_.insert(attempt_log_.end(), sup.attempts.begin(),
                            sup.attempts.end());
      }
      InsertOutcome out;
      out.status = sup.status;
      out.ok = sup.ok;
      out.epoch = sup.result.epoch;
      out.batch_points = batch.size();
      out.deleted_points = deletions.size();
      // Engine ids continue the base snapshot's sequence in batch order,
      // so each accepted request owns a contiguous range.
      const PointId base_id =
          static_cast<PointId>(snap != nullptr ? snap->point_count() : 0);
      // Journal the committed round before any future resolves: a client
      // that sees its mutation acknowledged knows the record was appended
      // (journal.h). A failed append does NOT roll the epoch back — it is
      // reported through InsertOutcome::journal instead.
      if (sup.ok) {
        if (BatchJournal<D>* journal =
                journal_.load(std::memory_order_acquire)) {
          auto committed = engine_.snapshot();
          typename BatchJournal<D>::Commit commit;
          commit.epoch = sup.result.epoch;
          commit.first_id = base_id;
          commit.deletions = &deletions;
          commit.points = &batch;
          commit.snapshot = committed.get();
          out.journal = journal->on_commit(commit);
        }
      }
      PARHULL_SCHEDULE_POINT();  // epoch published, futures not yet resolved
      for (std::size_t i = 0; i < accepted.size(); ++i) {
        Request* r = accepted[i];
        InsertOutcome mine = out;
        if (sup.ok && !r->points.empty()) {
          mine.first_id = base_id + static_cast<PointId>(offsets[i]);
          mine.inserted_points = r->points.size();
        }
        r->promise.set_value(mine);
      }
      // Checkpoints run after the round's mutations so a `persist` acked
      // behind them folds them in.
      resolve_checkpoints(checkpoints);
      reqs.clear();
    }
  }

  void resolve_checkpoints(const std::vector<Request*>& checkpoints) {
    if (checkpoints.empty()) return;
    InsertOutcome cp;
    cp.status = HullStatus::kOk;
    if (BatchJournal<D>* journal = journal_.load(std::memory_order_acquire)) {
      if (auto latest = engine_.snapshot()) {
        cp.status = journal->on_checkpoint(*latest);
        cp.epoch = latest->epoch;
      }
    }
    cp.ok = cp.status == HullStatus::kOk;
    cp.journal = cp.status;
    for (Request* r : checkpoints) r->promise.set_value(cp);
  }

  Options opts_;
  Engine engine_;
  Supervisor supervisor_;
  std::atomic<BatchJournal<D>*> journal_{nullptr};
  engine_detail::RequestQueue<Request> queue_;
  mutable std::mutex log_mu_;
  std::vector<AttemptRecord> attempt_log_;
  std::thread writer_;  // last member: joined before the rest tears down
};

}  // namespace parhull
