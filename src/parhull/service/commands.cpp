#include "parhull/service/commands.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "parhull/workload/generators.h"

namespace parhull::service {

namespace {

void add_field(CommandResult& res, std::string key, std::uint64_t value) {
  res.fields.emplace_back(std::move(key), std::to_string(value));
}

void add_field(CommandResult& res, std::string key, std::string raw) {
  res.fields.emplace_back(std::move(key), std::move(raw));
}

CommandResult usage(const char* text) {
  CommandResult res;
  res.status = HullStatus::kBadInput;
  res.text = text;
  return res;
}

CommandResult no_hull_yet() {
  CommandResult res;
  res.text = "no hull yet (insert points first)\n";
  add_field(res, "empty", "true");
  return res;
}

bool read_point(std::istringstream& in, Point<3>& p, CommandResult& res) {
  if (!(in >> p[0] >> p[1] >> p[2])) {
    res = usage("expected three coordinates\n");
    return false;
  }
  if (!finite<3>(p)) {
    res = usage("coordinates must be finite\n");
    return false;
  }
  return true;
}

std::string format_point(const Point<3>& v) {
  std::ostringstream os;
  os << "(" << v[0] << ", " << v[1] << ", " << v[2] << ")";
  return os.str();
}

// A committed round whose log append failed: the mutation IS in the hull,
// but it would not survive a crash. The ok line keeps its shape (clients
// and the smoke harness count acks by it); the warning line and the
// kPersistFailed status carry the degradation.
void note_journal_failure(CommandResult& res, std::ostringstream& os,
                          HullStatus journal) {
  if (journal == HullStatus::kOk) return;
  res.status = HullStatus::kPersistFailed;
  os << "warning: committed but NOT journaled (" << to_string(journal)
     << ")\n";
}

}  // namespace

CommandResult query_reply(const HullSnapshot<3>* snap, const Point<3>& p) {
  if (snap == nullptr) return no_hull_yet();
  CommandResult res;
  const char* where = nullptr;
  switch (locate_point<3>(*snap, p)) {
    case PointLocation::kInside: where = "inside"; break;
    case PointLocation::kOnBoundary: where = "on boundary"; break;
    case PointLocation::kOutside: where = "outside"; break;
  }
  std::ostringstream os;
  os << where << " (epoch " << snap->epoch << ")\n";
  res.text = os.str();
  std::string loc = "\"";
  loc += where;
  loc += '"';
  add_field(res, "location", std::move(loc));
  add_field(res, "epoch", snap->epoch);
  return res;
}

CommandResult extreme_reply(const HullSnapshot<3>* snap, const Point<3>& dir) {
  if (snap == nullptr) return no_hull_yet();
  CommandResult res;
  // Empty-hull guard (the pre-service REPL indexed the point sequence with
  // kInvalidPoint here): a snapshot with no facets has no vertices, and an
  // extreme walk that found no vertex must not be dereferenced either.
  if (snap->facet_count() == 0) {
    res.text = "hull is empty: no extreme vertex\n";
    add_field(res, "empty", "true");
    return res;
  }
  const auto ext = extreme_point<3>(*snap, dir);
  if (ext.vertex == kInvalidPoint || ext.vertex >= snap->point_count()) {
    res.text = "hull is empty: no extreme vertex\n";
    add_field(res, "empty", "true");
    return res;
  }
  const Point<3>& v = (*snap->points)[ext.vertex];
  std::ostringstream os;
  os << "vertex " << ext.vertex << " = " << format_point(v) << ", dot "
     << ext.value << " (" << ext.facets_visited << " facets visited)\n";
  res.text = os.str();
  add_field(res, "vertex", ext.vertex);
  std::ostringstream dot;
  dot << ext.value;
  add_field(res, "dot", dot.str());
  return res;
}

CommandResult visible_reply(const HullSnapshot<3>* snap, const Point<3>& p) {
  if (snap == nullptr) return no_hull_yet();
  CommandResult res;
  if (snap->facet_count() == 0) {
    res.text = "hull is empty: no facets visible\n";
    add_field(res, "empty", "true");
    add_field(res, "visible", std::uint64_t{0});
    return res;
  }
  const auto vis = visible_facets<3>(*snap, p);
  std::ostringstream os;
  os << vis.size() << " of " << snap->facet_count() << " facets visible\n";
  res.text = os.str();
  add_field(res, "visible", static_cast<std::uint64_t>(vis.size()));
  add_field(res, "facets", static_cast<std::uint64_t>(snap->facet_count()));
  return res;
}

const char* TenantSession::help_text() {
  return
      "commands:\n"
      "  gen N SEED      submit N points on the unit sphere\n"
      "  insert X Y Z    submit one point\n"
      "  delete ID...    tombstone points by id\n"
      "  update ID X Y Z atomic delete + insert in one epoch\n"
      "  query X Y Z     inside / on boundary / outside\n"
      "  extreme X Y Z   hull vertex maximizing dot(v, dir)\n"
      "  visible X Y Z   count facets visible from the point\n"
      "  stats           engine epoch statistics\n"
      "  hullhash        canonical digest of the hull state\n"
      "  persist         fsync the log and write a checkpoint\n"
      "  recover-stats   durability and recovery counters\n"
      "  help            this list\n"
      "  quit            drain pending work and exit\n";
}

TenantSession::TenantSession() : TenantSession(Options()) {}

TenantSession::TenantSession(Options opts)
    : opts_(std::move(opts)), batcher_(opts_.batcher) {}

bool TenantSession::admit_points(std::size_t n, CommandResult& res) {
  if (n > opts_.limits.max_points_per_command) {
    std::ostringstream os;
    os << "rejected: " << n << " points exceeds the per-command limit of "
       << opts_.limits.max_points_per_command << "\n";
    res.status = HullStatus::kBadInput;
    res.text = os.str();
    return false;
  }
  if (pending_requests() >= opts_.limits.max_pending_requests) {
    std::ostringstream os;
    os << "overloaded: " << pending_requests()
       << " mutation requests pending (limit "
       << opts_.limits.max_pending_requests << "); retry later\n";
    res.status = HullStatus::kOverloaded;
    res.text = os.str();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (admitted_points_ + n > opts_.limits.max_points_per_tenant) {
    std::ostringstream os;
    os << "rejected: tenant point budget exhausted (limit "
       << opts_.limits.max_points_per_tenant << " points)\n";
    res.status = HullStatus::kBadInput;
    res.text = os.str();
    return false;
  }
  admitted_points_ += n;
  return true;
}

CommandResult TenantSession::submit_points(PointSet<3> pts) {
  // Bootstrap: HullEngine's first batch must satisfy prepare_input<3>
  // (>= 4 affinely independent points leading). Buffer until then.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!bootstrapped_) {
      bootstrap_.insert(bootstrap_.end(), pts.begin(), pts.end());
      PointSet<3> seeded = bootstrap_;
      if (!prepare_input<3>(seeded)) {
        CommandResult res;
        std::ostringstream os;
        os << "buffered " << pts.size() << " point(s); " << bootstrap_.size()
           << " total (need 4 affinely independent to start)\n";
        add_field(res, "buffered", static_cast<std::uint64_t>(pts.size()));
        // Kind-2 record: a "buffered" ack must survive a crash too. Only
        // the increment is journaled; the first committed batch carries
        // the full prepared union and supersedes these (durability/wal.h).
        if (durability_ != nullptr) {
          note_journal_failure(res, os, durability_->on_buffered(pts));
        }
        res.text = os.str();
        return res;
      }
      bootstrapped_ = true;
      bootstrap_.clear();
      pts = std::move(seeded);
    }
  }
  const std::size_t n = pts.size();
  auto fut = batcher_.submit(std::move(pts));
  const Batcher::InsertOutcome out = fut.get();
  CommandResult res;
  res.status = out.status;
  std::ostringstream os;
  if (out.ok) {
    os << "ok: +" << n << " point(s) committed at epoch " << out.epoch
       << " (batch of " << out.batch_points << ", ids [" << out.first_id
       << ".." << out.first_id + out.inserted_points << "))\n";
    add_field(res, "epoch", out.epoch);
    add_field(res, "batch_points",
              static_cast<std::uint64_t>(out.batch_points));
    add_field(res, "first_id", out.first_id);
    add_field(res, "count", static_cast<std::uint64_t>(out.inserted_points));
    note_journal_failure(res, os, out.journal);
  } else {
    os << "insert failed: " << to_string(out.status) << "\n";
  }
  res.text = os.str();
  return res;
}

CommandResult TenantSession::insert_points(PointSet<3> pts) {
  CommandResult res;
  if (pts.empty()) return usage("insert rejected: no points\n");
  if (!all_finite<3>(pts)) return usage("coordinates must be finite\n");
  if (!admit_points(pts.size(), res)) return res;
  return submit_points(std::move(pts));
}

CommandResult TenantSession::locate_points(const PointSet<3>& pts) {
  CommandResult res;
  auto snap = snapshot();
  std::uint64_t inside = 0, boundary = 0, outside = 0;
  for (const Point<3>& p : pts) {
    if (snap == nullptr) {
      ++outside;  // the hull of nothing contains nothing
      continue;
    }
    switch (locate_point<3>(*snap, p)) {
      case PointLocation::kInside: ++inside; break;
      case PointLocation::kOnBoundary: ++boundary; break;
      case PointLocation::kOutside: ++outside; break;
    }
  }
  std::ostringstream os;
  os << inside << " inside, " << boundary << " on boundary, " << outside
     << " outside (of " << pts.size() << ")\n";
  res.text = os.str();
  add_field(res, "inside", inside);
  add_field(res, "boundary", boundary);
  add_field(res, "outside", outside);
  return res;
}

CommandResult TenantSession::execute(std::string_view line) {
  std::string cleaned(line);
  const std::size_t hash = cleaned.find('#');
  if (hash != std::string::npos) cleaned.erase(hash);
  std::istringstream in(cleaned);
  std::string cmd;
  if (!(in >> cmd)) return CommandResult{};  // blank / comment line

  if (cmd == "quit" || cmd == "exit") {
    CommandResult res;
    res.quit = true;
    return res;
  }
  if (cmd == "help") {
    CommandResult res;
    res.text = help_text();
    return res;
  }

  if (cmd == "gen") {
    long n = 0;
    unsigned long seed = 0;
    if (!(in >> n >> seed) || n <= 0) return usage("usage: gen N SEED\n");
    CommandResult res;
    // Admission BEFORE allocation: `gen` used to accept any positive long
    // and allocate it — the one-line-OOM abuse path.
    if (!admit_points(static_cast<std::size_t>(n), res)) return res;
    return submit_points(on_sphere<3>(static_cast<std::size_t>(n),
                                      static_cast<std::uint64_t>(seed)));
  }

  if (cmd == "insert") {
    Point<3> p;
    CommandResult res;
    if (!read_point(in, p, res)) return res;
    if (!admit_points(1, res)) return res;
    PointSet<3> pts;
    pts.push_back(p);
    return submit_points(std::move(pts));
  }

  if (cmd == "delete") {
    std::vector<PointId> ids;
    unsigned long id = 0;
    while (in >> id) ids.push_back(static_cast<PointId>(id));
    if (ids.empty()) return usage("usage: delete ID [ID...]\n");
    CommandResult res;
    if (ids.size() > opts_.limits.max_points_per_command) {
      std::ostringstream os;
      os << "rejected: " << ids.size()
         << " ids exceeds the per-command limit of "
         << opts_.limits.max_points_per_command << "\n";
      res.status = HullStatus::kBadInput;
      res.text = os.str();
      return res;
    }
    if (pending_requests() >= opts_.limits.max_pending_requests) {
      std::ostringstream os;
      os << "overloaded: " << pending_requests()
         << " mutation requests pending (limit "
         << opts_.limits.max_pending_requests << "); retry later\n";
      res.status = HullStatus::kOverloaded;
      res.text = os.str();
      return res;
    }
    const std::size_t n = ids.size();
    auto fut = batcher_.submit_delete(std::move(ids));
    const Batcher::InsertOutcome out = fut.get();
    res.status = out.status;
    std::ostringstream os;
    if (out.ok) {
      os << "ok: " << n << " point(s) tombstoned at epoch " << out.epoch
         << "\n";
      add_field(res, "epoch", out.epoch);
      add_field(res, "deleted", static_cast<std::uint64_t>(n));
      note_journal_failure(res, os, out.journal);
    } else if (out.status == HullStatus::kBadInput) {
      os << "delete rejected: ids must be in range, alive, and distinct "
            "(docs/ERRORS.md)\n";
    } else {
      os << "delete failed: " << to_string(out.status) << "\n";
    }
    res.text = os.str();
    return res;
  }

  if (cmd == "update") {
    unsigned long id = 0;
    if (!(in >> id)) return usage("usage: update ID X Y Z\n");
    Point<3> p;
    CommandResult res;
    if (!read_point(in, p, res)) return res;
    if (!admit_points(1, res)) return res;
    PointSet<3> moved;
    moved.push_back(p);
    auto fut = batcher_.submit_update({static_cast<PointId>(id)},
                                      std::move(moved));
    const Batcher::InsertOutcome out = fut.get();
    res.status = out.status;
    std::ostringstream os;
    if (out.ok) {
      os << "ok: point " << id << " moved at epoch " << out.epoch
         << " (the replacement has id " << out.first_id << ")\n";
      add_field(res, "epoch", out.epoch);
      add_field(res, "new_id", out.first_id);
      note_journal_failure(res, os, out.journal);
    } else if (out.status == HullStatus::kBadInput) {
      os << "update rejected: id must be in range and alive "
            "(docs/ERRORS.md)\n";
    } else {
      os << "update failed: " << to_string(out.status) << "\n";
    }
    res.text = os.str();
    return res;
  }

  if (cmd == "query" || cmd == "extreme" || cmd == "visible") {
    Point<3> p;
    CommandResult res;
    if (!read_point(in, p, res)) return res;
    auto snap = snapshot();
    if (cmd == "query") return query_reply(snap.get(), p);
    if (cmd == "extreme") return extreme_reply(snap.get(), p);
    return visible_reply(snap.get(), p);
  }

  if (cmd == "stats") {
    const EngineStats s = stats();
    CommandResult res;
    std::ostringstream os;
    os << "epoch " << s.epoch << ": " << s.live_points << " live of "
       << s.points << " points, " << s.hull_facets << " hull facets\n"
       << "batches " << s.batches << " (" << s.delete_batches
       << " with deletions, " << s.failed_batches << " failed, "
       << pending_requests() << " pending), " << s.points_deleted_total
       << " points deleted, " << s.facets_created_total
       << " facets created, " << s.visibility_tests_total
       << " visibility tests, " << s.regrows_total << " regrows\n"
       << "last batch: " << s.last_batch_points << " points in "
       << s.last_batch_ms << " ms\n";
    res.text = os.str();
    add_field(res, "epoch", s.epoch);
    add_field(res, "points", s.points);
    add_field(res, "live_points", s.live_points);
    add_field(res, "hull_facets", s.hull_facets);
    add_field(res, "pending",
              static_cast<std::uint64_t>(pending_requests()));
    return res;
  }

  if (cmd == "hullhash") {
    // Canonical digest of the full observable state (point bit patterns,
    // tombstones, facet tuples) — NOT the epoch, so a recovered tenant and
    // an oracle replay of the same acked prefix print the same hash even
    // though their epoch counters differ.
    CommandResult res;
    auto snap = snapshot();
    const std::uint64_t h = snap != nullptr ? canonical_hull_hash<3>(*snap) : 0;
    std::ostringstream os;
    os << "hull hash " << std::hex << std::setfill('0') << std::setw(16) << h
       << std::dec << std::setfill(' ') << " (epoch "
       << (snap != nullptr ? snap->epoch : 0) << ", "
       << (snap != nullptr ? snap->facet_count() : 0) << " facets, "
       << (snap != nullptr ? snap->live_points : 0) << " live points)\n";
    res.text = os.str();
    std::ostringstream hexs;
    hexs << "\"" << std::hex << std::setfill('0') << std::setw(16) << h
         << "\"";
    add_field(res, "hash", hexs.str());
    add_field(res, "epoch",
              static_cast<std::uint64_t>(snap != nullptr ? snap->epoch : 0));
    return res;
  }

  if (cmd == "persist") {
    CommandResult res;
    if (durability_ == nullptr) {
      res.status = HullStatus::kBadInput;
      res.text = "persist unavailable: durability is not configured\n";
      return res;
    }
    // Belt and braces for kInterval/kNone tenants: flush the log even if
    // the checkpoint below fails.
    (void)durability_->sync_wal();
    auto fut = batcher_.submit_checkpoint();
    const Batcher::InsertOutcome out = fut.get();
    res.status = out.status;
    std::ostringstream os;
    if (out.ok) {
      const durability::DurabilityStats s = durability_->stats();
      os << "checkpointed at epoch " << out.epoch << " (seq " << s.last_seq
         << ")\n";
      add_field(res, "epoch", out.epoch);
      add_field(res, "seq", s.last_seq);
    } else {
      os << "persist failed: " << to_string(out.status) << "\n";
    }
    res.text = os.str();
    return res;
  }

  if (cmd == "recover-stats") {
    CommandResult res;
    if (durability_ == nullptr) {
      res.status = HullStatus::kBadInput;
      res.text = "recover-stats unavailable: durability is not configured\n";
      return res;
    }
    const durability::RecoveryReport& rep = durability_->report();
    const durability::DurabilityStats s = durability_->stats();
    std::ostringstream os;
    os << "recovery: " << to_string(rep.status) << "\n";
    if (!rep.detail.empty()) os << "  " << rep.detail << "\n";
    os << "  checkpoint: " << (rep.checkpoint_loaded ? "loaded" : "none")
       << " (epoch " << rep.checkpoint_epoch << ", seq "
       << rep.checkpoint_seq << ", points " << rep.checkpoint_points
       << ")\n"
       << "  replay: " << rep.records_applied << " applied, "
       << rep.records_skipped << " skipped, " << rep.buffered_points
       << " buffered, " << rep.torn_bytes << " torn byte(s)\n"
       << "  wal: " << s.wal_records << " record(s) appended, "
       << s.wal_bytes << " bytes, " << s.checkpoints_written
       << " checkpoint(s), " << s.append_failures << " failure(s)\n"
       << "last seq " << s.last_seq << "\n";
    res.text = os.str();
    std::string status = "\"";
    status += to_string(rep.status);
    status += '"';
    add_field(res, "status", std::move(status));
    add_field(res, "last_seq", s.last_seq);
    add_field(res, "applied", rep.records_applied);
    add_field(res, "torn_bytes", rep.torn_bytes);
    return res;
  }

  CommandResult res;
  res.status = HullStatus::kBadInput;
  std::ostringstream os;
  os << "unknown command '" << cmd << "' (try help)\n";
  res.text = os.str();
  return res;
}

durability::RecoveryReport TenantSession::open_durable(
    durability::DurabilityOptions opts) {
  durability_ =
      std::make_unique<durability::TenantDurability>(std::move(opts));

  durability::ReplayTarget target;
  // Checkpoint restore: the stored sequence is the engine's own committed
  // (already prepared) order, so re-inserting it verbatim reproduces the
  // identical PointIds; the mask is then applied as one delete batch.
  target.restore_base = [this](const PointSet<3>& pts,
                               const std::vector<std::uint8_t>& mask) {
    if (pts.empty()) return HullStatus::kOk;  // checkpoint of nothing
    {
      std::lock_guard<std::mutex> lock(mu_);
      bootstrapped_ = true;
      admitted_points_ = pts.size();
    }
    const Batcher::InsertOutcome ins = batcher_.submit(pts).get();
    if (!ins.ok) return HullStatus::kCorruptLog;
    std::vector<PointId> dead;
    for (std::size_t i = 0; i < pts.size() && i < mask.size(); ++i) {
      if (mask[i] != 0) dead.push_back(static_cast<PointId>(i));
    }
    if (!dead.empty()) {
      const Batcher::InsertOutcome del =
          batcher_.submit_delete(std::move(dead)).get();
      if (!del.ok) return HullStatus::kCorruptLog;
    }
    auto snap = batcher_.snapshot();
    return snap != nullptr && snap->point_count() == pts.size()
               ? HullStatus::kOk
               : HullStatus::kCorruptLog;
  };

  // One kind-1 record = one coalesced round; replaying them serially (each
  // future awaited) reproduces the identical round sequence. first_id
  // doubles as the divergence check: the record's points must continue the
  // id sequence exactly where the current state ends.
  target.apply_record = [this](const durability::WalRecord& rec) {
    auto snap = batcher_.snapshot();
    const std::size_t have = snap != nullptr ? snap->point_count() : 0;
    if (!rec.points.empty() &&
        rec.first_id != static_cast<PointId>(have)) {
      return HullStatus::kCorruptLog;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      bootstrapped_ = true;
      admitted_points_ += rec.points.size();
    }
    const Batcher::InsertOutcome out =
        rec.deletions.empty()
            ? batcher_.submit(rec.points).get()
            : batcher_.submit_update(rec.deletions, rec.points).get();
    return out.ok ? HullStatus::kOk
                  : (out.status == HullStatus::kOk ? HullStatus::kCorruptLog
                                                   : out.status);
  };

  target.buffer_points = [this](const PointSet<3>& pts) {
    std::lock_guard<std::mutex> lock(mu_);
    bootstrap_ = pts;
    bootstrapped_ = false;
    admitted_points_ = pts.size();
    return HullStatus::kOk;
  };

  const durability::RecoveryReport rep = durability_->recover(target);
  // Attach only AFTER recovery so the replay itself is not re-journaled.
  // Attached even when recovery degraded to non-durable: every later
  // mutation then carries the kPersistFailed warning, which is how the
  // degradation stays visible instead of silent.
  batcher_.set_journal(durability_.get());
  return rep;
}

void TenantSession::shutdown() {
  if (durability_ != nullptr) {
    // Final checkpoint: fold everything committed into the snapshot file.
    // Failure is survivable — every acked round is already in the log.
    (void)batcher_.submit_checkpoint().get();
  }
  batcher_.close();
}

}  // namespace parhull::service
