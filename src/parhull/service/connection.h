// Per-connection state and frame execution for the hull service
// (docs/SERVICE.md). A Connection is a passive record shared between the
// event loop (service/listener.cpp — the only thread that ever touches
// the socket) and the worker pool (which executes complete frames through
// the shared command dispatch and appends reply bytes). The split keeps
// socket IO single-owner while command execution — which may block on a
// tenant's group commit — runs off the event loop.
//
// Locking discipline:
//   * `pending` and `scheduled` are guarded by the server's work-queue
//     mutex (they ARE the work queue's per-connection shard).
//   * `out`, `want_write`, `close_after_flush`, `peer_eof` and `closed`
//     are guarded by `io_mu`.
//   * `in` and the epoll interest set belong to the event loop alone.
//   * `tenant` is touched only by the single worker currently running the
//     connection's frames (at most one — `scheduled` enforces it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "parhull/service/protocol.h"
#include "parhull/service/tenant_registry.h"

namespace parhull::service {

// Monotonic service-level counters (lock-free; sampled by stats()).
struct ServiceCounters {
  std::atomic<std::uint64_t> accepted_total{0};
  std::atomic<std::uint64_t> rejected_connections{0};  // admission shed
  std::atomic<std::uint64_t> active_connections{0};
  std::atomic<std::uint64_t> frames_total{0};
  std::atomic<std::uint64_t> shed_frames{0};       // kOverloaded replies
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> commands_total{0};    // frames executed
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> idle_closed{0};     // slow-loris scan closes
  std::atomic<std::uint64_t> overrun_closed{0};  // outbound-cap sheds
};

struct ServiceStats {
  std::uint64_t accepted_total = 0;
  std::uint64_t rejected_connections = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t frames_total = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t commands_total = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t overrun_closed = 0;
  std::uint64_t tenants = 0;
};

// What frame execution needs from the server.
struct ServerContext {
  TenantRegistry& registry;
  ServiceCounters& counters;
};

class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  int fd() const { return fd_; }

  // --- event loop only ---
  std::string in;  // raw bytes; frames peeled off by the event loop
  // Last moment bytes arrived (set at accept, refreshed per read). The
  // event loop's idle scan compares it against SessionLimits::
  // idle_timeout_ms — the slow-loris guard.
  std::chrono::steady_clock::time_point last_activity{};

  // --- work queue (guarded by the server's work mutex) ---
  std::deque<std::string> pending;  // complete frames awaiting a worker
  bool scheduled = false;           // a worker owns this connection now

  // --- reply channel (guarded by io_mu) ---
  std::mutex io_mu;
  std::string out;                // bytes awaiting the socket
  bool want_write = false;        // EPOLLOUT currently armed
  bool close_after_flush = false; // quit / protocol error / peer EOF
  bool peer_eof = false;          // read() returned 0
  bool closed = false;            // fd closed; late replies are dropped
  // Outbound buffer overran max_outbound_bytes: the backlog was dropped,
  // one typed kOverloaded line queued, and every later reply is discarded
  // until the close lands (service/listener.cpp, append_outbound_locked).
  bool overrun = false;

  // --- worker only (single owner via `scheduled`) ---
  std::string tenant = "default";  // text-mode tenant; `tenant NAME` swaps

 private:
  int fd_;
};

// Result of executing one frame.
struct FrameOutcome {
  std::string reply;       // bytes to append to the connection's output
  bool close = false;      // close the connection once the reply flushed
  bool overloaded = false; // counted as a shed by the caller
};

// Execute one complete frame (text / JSON / binary — the frame grammar of
// service/protocol.h) against the registry. Runs on a worker thread; may
// block on the tenant's group commit. Never throws.
FrameOutcome process_frame(const ServerContext& ctx, Connection& conn,
                           const std::string& frame);

// One JSON reply line for `res`, echoing the request's `id` token when
// present. Shared by process_frame and the event loop's shed path so shed
// replies are indistinguishable in shape from executed ones.
std::string json_reply(const CommandResult& res, const JsonField* id);

// The kOverloaded shed reply for a frame of the given type (the event
// loop answers these without dispatching; docs/SERVICE.md "load
// shedding"). For JSON frames the request line is re-scanned only for its
// `id` token.
std::string shed_reply(FrameType type, std::string_view body);

}  // namespace parhull::service
