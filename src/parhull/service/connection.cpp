#include "parhull/service/connection.h"

#include <cstring>
#include <sstream>

namespace parhull::service {

namespace {

CommandResult typed_error(HullStatus status, std::string text) {
  CommandResult res;
  res.status = status;
  res.text = std::move(text);
  return res;
}

// Resolve a tenant name to its session, folding registry outcomes into
// typed replies: unknown names create (lazy), malformed names are
// kBadInput, a full registry is kOverloaded (admission control).
TenantSession* resolve_tenant(const ServerContext& ctx,
                              std::string_view name, CommandResult& err) {
  TenantRegistry::GetStatus why = TenantRegistry::GetStatus::kOk;
  TenantSession* session = ctx.registry.get_or_create(name, &why);
  if (session != nullptr) return session;
  if (why == TenantRegistry::GetStatus::kAtCapacity) {
    err = typed_error(HullStatus::kOverloaded,
                      "overloaded: tenant limit reached; retry later\n");
  } else {
    err = typed_error(HullStatus::kBadInput,
                      "invalid tenant name (want [A-Za-z0-9_.-]{1,64})\n");
  }
  return nullptr;
}

FrameOutcome text_frame(const ServerContext& ctx, Connection& conn,
                        std::string_view line) {
  FrameOutcome out;
  // `tenant NAME` is a connection-level verb: it retargets subsequent
  // text-mode commands, so a plain-transcript client can drive several
  // tenants over one socket.
  std::istringstream in{std::string(line)};
  std::string cmd;
  if ((in >> cmd) && cmd == "tenant") {
    std::string name;
    if (!(in >> name) || !TenantRegistry::valid_name(name)) {
      out.reply = "usage: tenant NAME (want [A-Za-z0-9_.-]{1,64})\n";
      return out;
    }
    conn.tenant = name;
    out.reply = "ok: tenant " + name + "\n";
    return out;
  }

  CommandResult err;
  TenantSession* session = resolve_tenant(ctx, conn.tenant, err);
  if (session == nullptr) {
    out.reply = err.text;
    out.overloaded = err.status == HullStatus::kOverloaded;
    return out;
  }
  CommandResult res = session->execute(line);
  out.reply = res.text;  // byte-identical to the stdio REPL's output
  out.close = res.quit;
  out.overloaded = res.status == HullStatus::kOverloaded;
  return out;
}

FrameOutcome json_frame(const ServerContext& ctx, Connection& conn,
                        std::string_view body) {
  FrameOutcome out;
  std::vector<JsonField> fields;
  std::string err;
  if (!parse_json_object(body, fields, &err)) {
    out.reply = json_reply(
        typed_error(HullStatus::kBadInput, "bad request: " + err + "\n"),
        nullptr);
    return out;
  }
  const JsonField* id = find_field(fields, "id");
  const JsonField* cmd = find_field(fields, "cmd");
  if (cmd == nullptr || !cmd->quoted) {
    out.reply = json_reply(
        typed_error(HullStatus::kBadInput,
                    "bad request: missing string field 'cmd'\n"),
        id);
    return out;
  }
  const JsonField* tenant = find_field(fields, "tenant");
  const std::string_view tenant_name =
      tenant != nullptr ? std::string_view(tenant->value)
                        : std::string_view(conn.tenant);
  CommandResult res;
  TenantSession* session = resolve_tenant(ctx, tenant_name, res);
  if (session != nullptr) res = session->execute(cmd->value);
  out.reply = json_reply(res, id);
  out.close = res.quit;
  out.overloaded = res.status == HullStatus::kOverloaded;
  return out;
}

FrameOutcome binary_frame(const ServerContext& ctx, Connection& conn,
                          std::string_view body) {
  FrameOutcome out;
  BinaryFrame frame;
  if (!parse_binary_frame(body, frame)) {
    // extract_frame only hands over length-consistent frames, so this is
    // defensive; treat it as fatal for the connection.
    out.reply = json_reply(
        typed_error(HullStatus::kBadInput, "bad binary frame\n"), nullptr);
    out.close = true;
    return out;
  }
  const std::string_view tenant_name =
      frame.tenant.empty() ? std::string_view(conn.tenant) : frame.tenant;
  CommandResult res;
  TenantSession* session = resolve_tenant(ctx, tenant_name, res);
  if (session != nullptr) {
    constexpr std::size_t kPointBytes = 3 * sizeof(double);
    if (frame.op != kBinInsert && frame.op != kBinLocate) {
      res = typed_error(HullStatus::kBadInput, "unknown binary op\n");
    } else if (frame.payload.size() % kPointBytes != 0) {
      res = typed_error(HullStatus::kBadInput,
                        "binary payload is not a whole number of points\n");
    } else {
      const std::size_t n = frame.payload.size() / kPointBytes;
      PointSet<3> pts;
      pts.resize(n);
      // Coordinates are f64 little-endian; a straight copy on the LE
      // hosts this service targets.
      if (n != 0) {
        std::memcpy(pts.data(), frame.payload.data(), frame.payload.size());
      }
      res = frame.op == kBinInsert ? session->insert_points(std::move(pts))
                                   : session->locate_points(pts);
    }
  }
  out.reply = json_reply(res, nullptr);
  out.overloaded = res.status == HullStatus::kOverloaded;
  return out;
}

}  // namespace

std::string json_reply(const CommandResult& res, const JsonField* id) {
  std::string out = "{";
  if (id != nullptr) {
    out += "\"id\":";
    if (id->quoted) {
      out += '"';
      append_json_escaped(out, id->value);
      out += '"';
    } else {
      out += id->value;
    }
    out += ',';
  }
  out += "\"status\":\"";
  out += to_string(res.status);
  out += '"';
  for (const auto& [key, value] : res.fields) {
    out += ",\"";
    append_json_escaped(out, key);
    out += "\":";
    out += value;
  }
  out += ",\"reply\":\"";
  append_json_escaped(out, res.text);
  out += "\"}\n";
  return out;
}

std::string shed_reply(FrameType type, std::string_view body) {
  CommandResult res;
  res.status = HullStatus::kOverloaded;
  res.text = "overloaded: server command queue is full; retry later\n";
  if (type == FrameType::kText) return res.text;
  const JsonField* id = nullptr;
  std::vector<JsonField> fields;
  if (type == FrameType::kJson &&
      parse_json_object(body, fields, nullptr)) {
    id = find_field(fields, "id");
  }
  return json_reply(res, id);
}

FrameOutcome process_frame(const ServerContext& ctx, Connection& conn,
                           const std::string& frame) {
  ctx.counters.commands_total.fetch_add(1, std::memory_order_relaxed);
  if (frame.empty()) return {};
  if (frame.front() == kBinaryMagic) return binary_frame(ctx, conn, frame);
  if (frame.front() == '{') return json_frame(ctx, conn, frame);
  return text_frame(ctx, conn, frame);
}

}  // namespace parhull::service
