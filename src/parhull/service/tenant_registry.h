// Tenant registry: the multi-tenant spine of the hull service
// (docs/SERVICE.md). Each tenant name owns an isolated TenantSession —
// its own HullEngine<3>, RequestBatcher writer thread, bootstrap buffer
// and admission budget — so one tenant's load, deletions, or failed
// batches can never perturb another tenant's hull (the per-tenant I10
// check in tests/test_service.cpp leans on exactly this isolation).
//
// Creation is lazy (first command naming a tenant creates it) and capped:
// past max_tenants the registry answers kAtCapacity and the service sheds
// the request with kOverloaded instead of growing without bound — tenant
// names are client-controlled input, so an uncapped registry would be an
// allocation amplifier. Sessions live until the registry is destroyed;
// returned pointers stay valid for the registry's lifetime.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parhull/service/commands.h"

namespace parhull::service {

class TenantRegistry {
 public:
  struct Options {
    TenantSession::Options session{};  // limits + engine/SLO policy, shared
    std::size_t max_tenants = 64;
    // Durability root. Empty = in-memory tenants (the pre-durability
    // behavior). Otherwise each tenant owns `<data_dir>/<name>/` and is
    // recovered from it on creation — lazily, or eagerly through
    // recover_existing() at startup.
    std::string data_dir;
    durability::WalOptions wal{};
    std::uint64_t checkpoint_every_bytes = 8ull << 20;
  };

  enum class GetStatus { kOk, kInvalidName, kAtCapacity };

  TenantRegistry() : TenantRegistry(Options()) {}
  explicit TenantRegistry(Options opts) : opts_(std::move(opts)) {}

  // Tenant names are a tight charset so they can pass through every frame
  // encoding (JSON, binary, logs) unescaped: [A-Za-z0-9_.-], 1..64 bytes.
  // "." and ".." are additionally rejected — names double as directory
  // names under data_dir, and those two would escape it.
  static bool valid_name(std::string_view name) {
    if (name.empty() || name.size() > 64) return false;
    if (name == "." || name == "..") return false;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '-';
      if (!ok) return false;
    }
    return true;
  }

  // Find or lazily create the named tenant. Null with *why set when the
  // name is malformed or the registry is full.
  TenantSession* get_or_create(std::string_view name,
                               GetStatus* why = nullptr) {
    if (!valid_name(name)) {
      if (why) *why = GetStatus::kInvalidName;
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) {
      if (why) *why = GetStatus::kOk;
      return it->second.get();
    }
    if (tenants_.size() >= opts_.max_tenants) {
      if (why) *why = GetStatus::kAtCapacity;
      return nullptr;
    }
    auto session = std::make_unique<TenantSession>(opts_.session);
    TenantSession* raw = session.get();
    if (!opts_.data_dir.empty()) {
      // Recover before the tenant is reachable by name: the first command
      // that lazily creates a durable tenant already sees its restored
      // state. Registered even on a degraded outcome (the report and the
      // per-mutation warnings carry the degradation); creation never fails
      // for durability reasons.
      durability::DurabilityOptions dopts;
      dopts.dir = opts_.data_dir + "/" + std::string(name);
      dopts.wal = opts_.wal;
      dopts.checkpoint_every_bytes = opts_.checkpoint_every_bytes;
      durability::RecoveryReport rep = raw->open_durable(std::move(dopts));
      reports_.emplace_back(std::string(name), std::move(rep));
    }
    tenants_.emplace(std::string(name), std::move(session));
    if (why) *why = GetStatus::kOk;
    return raw;
  }

  // Eagerly recover every tenant directory already under data_dir (the
  // startup pass, so a restart does not wait for first contact to replay
  // logs). Foreign directory names are skipped. No-op when not durable.
  std::size_t recover_existing() {
    if (opts_.data_dir.empty()) return 0;
    std::error_code ec;
    std::filesystem::directory_iterator it(opts_.data_dir, ec);
    if (ec) return 0;
    std::size_t recovered = 0;
    for (const auto& entry : it) {
      if (!entry.is_directory(ec) || ec) continue;
      const std::string name = entry.path().filename().string();
      if (!valid_name(name)) continue;
      GetStatus why = GetStatus::kOk;
      if (get_or_create(name, &why) != nullptr) ++recovered;
    }
    return recovered;
  }

  // Recovery outcomes in creation order, for startup logging and tests.
  std::vector<std::pair<std::string, durability::RecoveryReport>>
  recovery_reports() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }

  TenantSession* find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    return it != tenants_.end() ? it->second.get() : nullptr;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tenants_.size();
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(tenants_.size());
    for (const auto& [name, _] : tenants_) out.push_back(name);
    return out;
  }

  // Orderly shutdown: final checkpoint for every durable tenant, then stop
  // intake and drain every writer thread (group commit finishes accepted
  // work first — the engine contract). Simply destroying the registry
  // instead skips the checkpoints — that is the simulated-crash path.
  void close_all() {
    std::vector<TenantSession*> sessions;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [_, s] : tenants_) sessions.push_back(s.get());
    }
    for (TenantSession* s : sessions) s->shutdown();
  }

 private:
  Options opts_;
  mutable std::mutex mu_;
  // Heterogeneous lookup (std::less<>) so string_view probes do not
  // allocate a temporary key.
  std::map<std::string, std::unique_ptr<TenantSession>, std::less<>>
      tenants_;
  std::vector<std::pair<std::string, durability::RecoveryReport>> reports_;
};

}  // namespace parhull::service
