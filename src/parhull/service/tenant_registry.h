// Tenant registry: the multi-tenant spine of the hull service
// (docs/SERVICE.md). Each tenant name owns an isolated TenantSession —
// its own HullEngine<3>, RequestBatcher writer thread, bootstrap buffer
// and admission budget — so one tenant's load, deletions, or failed
// batches can never perturb another tenant's hull (the per-tenant I10
// check in tests/test_service.cpp leans on exactly this isolation).
//
// Creation is lazy (first command naming a tenant creates it) and capped:
// past max_tenants the registry answers kAtCapacity and the service sheds
// the request with kOverloaded instead of growing without bound — tenant
// names are client-controlled input, so an uncapped registry would be an
// allocation amplifier. Sessions live until the registry is destroyed;
// returned pointers stay valid for the registry's lifetime.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "parhull/service/commands.h"

namespace parhull::service {

class TenantRegistry {
 public:
  struct Options {
    TenantSession::Options session{};  // limits + engine/SLO policy, shared
    std::size_t max_tenants = 64;
  };

  enum class GetStatus { kOk, kInvalidName, kAtCapacity };

  TenantRegistry() : TenantRegistry(Options()) {}
  explicit TenantRegistry(Options opts) : opts_(std::move(opts)) {}

  // Tenant names are a tight charset so they can pass through every frame
  // encoding (JSON, binary, logs) unescaped: [A-Za-z0-9_.-], 1..64 bytes.
  static bool valid_name(std::string_view name) {
    if (name.empty() || name.size() > 64) return false;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '-';
      if (!ok) return false;
    }
    return true;
  }

  // Find or lazily create the named tenant. Null with *why set when the
  // name is malformed or the registry is full.
  TenantSession* get_or_create(std::string_view name,
                               GetStatus* why = nullptr) {
    if (!valid_name(name)) {
      if (why) *why = GetStatus::kInvalidName;
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) {
      if (why) *why = GetStatus::kOk;
      return it->second.get();
    }
    if (tenants_.size() >= opts_.max_tenants) {
      if (why) *why = GetStatus::kAtCapacity;
      return nullptr;
    }
    auto session = std::make_unique<TenantSession>(opts_.session);
    TenantSession* raw = session.get();
    tenants_.emplace(std::string(name), std::move(session));
    if (why) *why = GetStatus::kOk;
    return raw;
  }

  TenantSession* find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    return it != tenants_.end() ? it->second.get() : nullptr;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tenants_.size();
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(tenants_.size());
    for (const auto& [name, _] : tenants_) out.push_back(name);
    return out;
  }

  // Stop intake and drain every tenant's writer thread (group commit
  // finishes accepted work first — the engine contract).
  void close_all() {
    std::vector<TenantSession*> sessions;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [_, s] : tenants_) sessions.push_back(s.get());
    }
    for (TenantSession* s : sessions) s->close();
  }

 private:
  Options opts_;
  mutable std::mutex mu_;
  // Heterogeneous lookup (std::less<>) so string_view probes do not
  // allocate a temporary key.
  std::map<std::string, std::unique_ptr<TenantSession>, std::less<>>
      tenants_;
};

}  // namespace parhull::service
