// Command-dispatch core of the hull service (docs/SERVICE.md): one tenant's
// REPL verbs (gen / insert / delete / update / query / extreme / visible /
// stats / help / quit) executed against that tenant's HullEngine<3> +
// RequestBatcher. BOTH front-ends run every command through this — the
// stdin REPL (examples/hull_server.cpp) prints CommandResult::text
// verbatim, and the epoll server (service/listener.h) wraps the same
// result in a protocol reply — so the two surfaces cannot drift, and the
// golden-transcript tests (tests/test_service_commands.cpp) pin the reply
// bytes for both at once.
//
// The dispatch is also where the server's abuse guards live:
//
//   * `extreme`/`visible` against an empty hull (no snapshot yet, a
//     snapshot with zero facets, or an extreme walk that found no vertex)
//     answer "hull is empty" instead of indexing the point sequence with
//     kInvalidPoint — the crash path the pre-service REPL had.
//   * `gen N SEED` and bulk inserts are capped per command
//     (SessionLimits::max_points_per_command) and per tenant
//     (max_points_per_tenant), so no single request line can OOM the
//     process; violations are typed kBadInput with the limit in the text.
//   * Mutations are shed with kOverloaded when the tenant's batcher queue
//     is already max_pending_requests deep — admission control instead of
//     an ever-growing intake queue (the service layer adds a second,
//     global shed on its own worker queue; see service/listener.h).
//
// Thread safety: execute() may be called from any number of threads (the
// socket server runs one call per in-flight frame). Queries only touch the
// lock-free snapshot; mutations serialize on a small session mutex that
// guards the bootstrap buffer and the admission counter, then submit to
// the MPMC batcher and wait on the future (group commit resolves every
// waiter of a round together).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parhull/common/status.h"
#include "parhull/durability/recovery.h"
#include "parhull/engine/batcher.h"
#include "parhull/engine/query.h"
#include "parhull/engine/snapshot.h"

namespace parhull::service {

struct SessionLimits {
  // Hard cap on the points one command may add (gen N, binary bulk
  // insert). One request line can never allocate more than this.
  std::size_t max_points_per_command = 1u << 20;
  // Cap on a tenant's whole point sequence (tombstones included — ids are
  // never recycled). Admission-time accounting: rolled-back batches still
  // consume budget, which keeps the check race-free and monotone.
  std::size_t max_points_per_tenant = 1u << 23;
  // Mutations are shed with kOverloaded once this many coalesced requests
  // are already queued at the tenant's batcher.
  std::size_t max_pending_requests = 256;
  // A connection that has sat idle this long while holding a half-parsed
  // frame is closed with a typed kDeadlineExceeded reply (the slow-loris
  // guard; enforced by the epoll server's idle scan, service/listener.h).
  // 0 disables the scan.
  std::uint64_t idle_timeout_ms = 30000;
};

// One executed command. `fields` carries the machine-readable facts the
// JSON protocol layer emits as reply fields (key, raw JSON token) — the
// text already folds them in for humans.
struct CommandResult {
  HullStatus status = HullStatus::kOk;
  bool quit = false;  // "quit"/"exit" seen; adapters end the session
  std::string text;   // '\n'-terminated human-readable reply lines
  std::vector<std::pair<std::string, std::string>> fields;
};

// Query formatting helpers, split out so the empty-hull guards are
// testable against handcrafted snapshots (a default-constructed snapshot
// is a legal "hull of nothing"). `snap` may be null: "no hull yet".
CommandResult query_reply(const HullSnapshot<3>* snap, const Point<3>& p);
CommandResult extreme_reply(const HullSnapshot<3>* snap, const Point<3>& dir);
CommandResult visible_reply(const HullSnapshot<3>* snap, const Point<3>& p);

class TenantSession {
 public:
  using Batcher = RequestBatcher<3>;

  struct Options {
    SessionLimits limits{};
    Batcher::Options batcher{};  // engine params + Supervisor SLO policy
  };

  TenantSession();  // default Options
  explicit TenantSession(Options opts);
  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  // Execute one command line ('#' starts a comment; blank lines are kOk
  // with empty text). Never throws, never aborts: every outcome is a
  // typed CommandResult.
  CommandResult execute(std::string_view line);

  // Bulk insert, the binary-frame fast path: same admission guards and
  // reply shape as `gen`, without a text parse per coordinate.
  CommandResult insert_points(PointSet<3> pts);
  // Bulk locate: counts of inside / on-boundary / outside over the
  // current snapshot (no hull yet = hull of nothing = all outside).
  CommandResult locate_points(const PointSet<3>& pts);

  std::shared_ptr<const HullSnapshot<3>> snapshot() const {
    return batcher_.snapshot();
  }
  EngineStats stats() const { return batcher_.stats(); }
  std::size_t pending_requests() const { return batcher_.pending_requests(); }
  const SessionLimits& limits() const { return opts_.limits; }

  // The canonical verb list, shared by both front-ends' help output.
  static const char* help_text();

  // Bind this tenant to a data directory: recover whatever is on disk
  // (checkpoint, then the log tail) and journal every later mutation. Must
  // run before the session serves traffic — replayed batches are applied
  // with no journal attached, so they are not re-logged. The returned
  // report is also kept for the `recover-stats` verb.
  durability::RecoveryReport open_durable(durability::DurabilityOptions opts);

  // Durability state, null when open_durable was never called.
  durability::TenantDurability* durability() { return durability_.get(); }

  // Orderly exit: write a final checkpoint (when durable), then close().
  // close() itself stays drain-only ON PURPOSE — dropping a session
  // without shutdown() is exactly how the tests simulate kill -9.
  void shutdown();

  // Stop intake and drain the tenant's writer (idempotent).
  void close() { batcher_.close(); }

 private:
  CommandResult submit_points(PointSet<3> pts);
  bool admit_points(std::size_t n, CommandResult& res);

  Options opts_;
  // Declared before batcher_: the batcher's destructor joins the writer
  // thread, which may still be journaling through this pointer.
  std::unique_ptr<durability::TenantDurability> durability_;
  Batcher batcher_;
  std::mutex mu_;            // bootstrap buffer + admission counter
  PointSet<3> bootstrap_;    // buffered until 4 affinely independent points
  bool bootstrapped_ = false;
  std::size_t admitted_points_ = 0;  // points ever accepted for submission
};

}  // namespace parhull::service
