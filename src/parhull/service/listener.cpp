#include "parhull/service/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace parhull::service {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

HullServer::HullServer(ServiceOptions opts)
    : opts_(std::move(opts)), registry_(opts_.tenants) {}

HullServer::~HullServer() { stop(); }

HullStatus HullServer::start() {
  if (running_) return HullStatus::kOk;

  // Crash recovery before the first byte of traffic: every tenant
  // directory under data_dir is replayed now, so a client of a restarted
  // service sees its acked state, not a lazily-recovering one. Recovery
  // never fails startup — degraded tenants carry a typed report
  // (registry().recovery_reports()).
  registry_.recover_existing();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return HullStatus::kBadInput;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return HullStatus::kBadInput;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return HullStatus::kBadInput;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_ = false;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = false;
  }
  running_ = true;
  loop_thread_ = std::thread([this] { event_loop(); });
  const int n_workers = opts_.worker_threads > 0 ? opts_.worker_threads : 1;
  workers_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return HullStatus::kOk;
}

void HullServer::stop() {
  if (!running_) return;
  stopping_ = true;
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Tenants drain last: a worker blocked on a group commit has resolved
  // by now, and accepted mutations commit before the writers exit.
  registry_.close_all();
  ::close(epoll_fd_);
  ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  running_ = false;
}

ServiceStats HullServer::stats() const {
  ServiceStats s;
  s.accepted_total = counters_.accepted_total.load();
  s.rejected_connections = counters_.rejected_connections.load();
  s.active_connections = counters_.active_connections.load();
  s.frames_total = counters_.frames_total.load();
  s.shed_frames = counters_.shed_frames.load();
  s.protocol_errors = counters_.protocol_errors.load();
  s.commands_total = counters_.commands_total.load();
  s.bytes_in = counters_.bytes_in.load();
  s.bytes_out = counters_.bytes_out.load();
  s.idle_closed = counters_.idle_closed.load();
  s.overrun_closed = counters_.overrun_closed.load();
  s.tenants = registry_.size();
  return s;
}

void HullServer::handle_accept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: move on
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (conns_.size() >= opts_.max_connections) {
      // Admission shed: answer and close instead of letting the backlog
      // absorb connections the workers will never get to.
      counters_.rejected_connections.fetch_add(1, std::memory_order_relaxed);
      CommandResult res;
      res.status = HullStatus::kOverloaded;
      res.text = "overloaded: connection limit reached; retry later\n";
      const std::string reply = json_reply(res, nullptr);
      [[maybe_unused]] ssize_t n =
          ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    counters_.accepted_total.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    conn->last_activity = std::chrono::steady_clock::now();
    conns_.emplace(fd, conn);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void HullServer::handle_readable(const ConnPtr& conn) {
  char buf[1 << 16];
  conn->last_activity = std::chrono::steady_clock::now();
  while (true) {
    const ssize_t n = ::recv(conn->fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      conn->in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer finished sending (half-close): execute what was received,
      // flush every reply, then close.
      std::lock_guard<std::mutex> lock(conn->io_mu);
      conn->peer_eof = true;
      conn->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  ingest_frames(conn);
  maybe_close(conn);
}

void HullServer::ingest_frames(const ConnPtr& conn) {
  bool woke_worker = false;
  while (true) {
    Frame frame = extract_frame(conn->in, opts_.max_frame_bytes);
    if (frame.type == FrameType::kNone) break;
    if (frame.type == FrameType::kError) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      CommandResult res;
      res.status = HullStatus::kBadInput;
      res.text = "protocol error: " + frame.error + "\n";
      std::lock_guard<std::mutex> lock(conn->io_mu);
      append_outbound_locked(*conn, json_reply(res, nullptr));
      conn->close_after_flush = true;
      conn->in.clear();  // nothing after a framing error is trustworthy
      break;
    }
    counters_.frames_total.fetch_add(1, std::memory_order_relaxed);
    std::string body(conn->in, 0, frame.consumed);
    const FrameType type = frame.type;
    std::string_view line = frame.body;  // views into conn->in
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      if (queued_frames_ >= opts_.max_queued_frames) {
        shed = true;
      } else {
        // Text/JSON frames are queued without their '\n'; binary frames
        // keep the whole encoding (process_frame re-parses the header).
        if (type == FrameType::kBinary) {
          conn->pending.push_back(std::move(body));
        } else {
          conn->pending.emplace_back(line);
        }
        ++queued_frames_;
        if (!conn->scheduled) {
          conn->scheduled = true;
          work_.push_back(conn);
          woke_worker = true;
        }
      }
    }
    if (shed) {
      counters_.shed_frames.fetch_add(1, std::memory_order_relaxed);
      const std::string reply = shed_reply(type, line);
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!reply.empty()) append_outbound_locked(*conn, reply);
    }
    conn->in.erase(0, frame.consumed);
  }
  if (woke_worker) work_cv_.notify_all();
  flush_writes(conn);
}

void HullServer::set_interest(const ConnPtr& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

void HullServer::flush_writes(const ConnPtr& conn) {
  bool arm = false;
  bool disarm = false;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (conn->closed) return;
    while (!conn->out.empty()) {
      const ssize_t n = ::send(conn->fd(), conn->out.data(),
                               conn->out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
        conn->out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          arm = true;
        }
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      // Peer vanished mid-write: drop the rest and close below.
      conn->out.clear();
      conn->close_after_flush = true;
      break;
    }
    if (conn->out.empty() && conn->want_write) {
      conn->want_write = false;
      disarm = true;
    }
  }
  if (arm) set_interest(conn, true);
  if (disarm) set_interest(conn, false);
  maybe_close(conn);
}

void HullServer::maybe_close(const ConnPtr& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> io(conn->io_mu);
    if (conn->closed || !conn->close_after_flush || !conn->out.empty()) {
      return;
    }
    std::lock_guard<std::mutex> work(work_mu_);
    close_now = conn->pending.empty() && !conn->scheduled;
  }
  if (close_now) close_conn(conn);
}

void HullServer::close_conn(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
  ::close(conn->fd());
  conns_.erase(conn->fd());
  counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
}

void HullServer::append_outbound_locked(Connection& conn,
                                        const std::string& bytes) {
  if (conn.overrun) return;  // already shedding: late replies are dropped
  if (conn.out.size() + bytes.size() > opts_.max_outbound_bytes) {
    // The peer is not reading. Drop the backlog it is not consuming, queue
    // one typed line explaining the close, and shed the connection.
    conn.overrun = true;
    counters_.overrun_closed.fetch_add(1, std::memory_order_relaxed);
    CommandResult res;
    res.status = HullStatus::kOverloaded;
    res.text = "overloaded: outbound buffer limit reached; closing\n";
    conn.out.clear();
    conn.out = json_reply(res, nullptr);
    conn.close_after_flush = true;
    return;
  }
  conn.out += bytes;
}

void HullServer::idle_scan() {
  const std::uint64_t timeout_ms =
      opts_.tenants.session.limits.idle_timeout_ms;
  if (timeout_ms == 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<ConnPtr> stale;
  for (auto& [fd, conn] : conns_) {
    const auto idle_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn->last_activity)
            .count();
    if (idle_ms < static_cast<long long>(timeout_ms)) continue;
    {
      // A worker still executing this connection's frames is progress,
      // not idleness (a group commit may legitimately exceed the window).
      std::lock_guard<std::mutex> work(work_mu_);
      if (conn->scheduled || !conn->pending.empty()) continue;
    }
    bool overrun = false;
    {
      std::lock_guard<std::mutex> io(conn->io_mu);
      if (conn->closed) continue;
      overrun = conn->overrun;
      if (!overrun) {
        counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        CommandResult res;
        res.status = HullStatus::kDeadlineExceeded;
        res.text = "idle timeout: no complete frame in " +
                   std::to_string(timeout_ms) + " ms; closing\n";
        append_outbound_locked(*conn, json_reply(res, nullptr));
        conn->close_after_flush = true;
      }
    }
    stale.push_back(conn);
  }
  for (const ConnPtr& conn : stale) {
    // Best-effort delivery of the typed close line, then a hard close —
    // waiting for a peer that never reads is exactly what the guard is
    // against (an overrun peer past the window gets the hard close too).
    flush_writes(conn);
    close_conn(conn);
  }
}

void HullServer::request_flush(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_.push_back(conn);
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void HullServer::event_loop() {
  constexpr int kMaxEvents = 128;
  // Bounded wait so the idle scan runs even when no fd fires — a
  // slow-loris peer's whole point is to generate no events.
  constexpr int kTickMs = 500;
  epoll_event events[kMaxEvents];
  while (!stopping_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, kTickMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    idle_scan();
    for (int i = 0; i < n && !stopping_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        std::vector<ConnPtr> to_flush;
        {
          std::lock_guard<std::mutex> lock(flush_mu_);
          to_flush.swap(flush_);
        }
        for (const ConnPtr& conn : to_flush) flush_writes(conn);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this wakeup
      ConnPtr conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_conn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) handle_readable(conn);
      if (events[i].events & EPOLLOUT) flush_writes(conn);
    }
  }
  // Teardown on the loop thread: every socket belongs to it.
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<ConnPtr> all;
  all.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) all.push_back(conn);
  for (const ConnPtr& conn : all) close_conn(conn);
  conns_.clear();
}

void HullServer::worker_loop() {
  const ServerContext ctx{registry_, counters_};
  while (true) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return workers_stop_ || !work_.empty(); });
      if (work_.empty()) return;  // workers_stop_ and drained
      conn = std::move(work_.front());
      work_.pop_front();
    }
    while (true) {
      std::string frame;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        if (conn->pending.empty()) {
          conn->scheduled = false;
          break;
        }
        frame = std::move(conn->pending.front());
        conn->pending.pop_front();
        --queued_frames_;
      }
      FrameOutcome outcome = process_frame(ctx, *conn, frame);
      if (outcome.overloaded) {
        counters_.shed_frames.fetch_add(1, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        if (!conn->closed) {
          append_outbound_locked(*conn, outcome.reply);
          if (outcome.close) conn->close_after_flush = true;
        }
      }
    }
    // One wakeup per scheduling round: the event loop sends what
    // accumulated and re-evaluates the close condition.
    request_flush(conn);
  }
}

}  // namespace parhull::service
