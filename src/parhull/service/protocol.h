// Wire protocol of the hull service (docs/SERVICE.md): the frame grammar
// shared by the epoll server (service/listener.h), the replay client
// (examples/hull_client.cpp), the load harness (bench/bench_e18_service.cpp)
// and the protocol tests.
//
// A connection carries a sequence of self-delimiting FRAMES; the first byte
// of each frame selects its encoding, so text, JSON and binary frames may
// be freely interleaved on one connection:
//
//   '{' ...... one JSON object per line ('\n'-terminated):
//                {"cmd": "insert 1 2 3"[, "tenant": "name"][, "id": tok]}
//              `cmd` is any REPL verb line (service/commands.h); `tenant`
//              overrides the connection's current tenant for this frame
//              only; `id` is an opaque token echoed back in the reply.
//              Reply: one JSON line {"status": "...", ...fields,
//              "reply": "text"}.
//   0x00 ..... length-prefixed binary frame (bulk data path):
//                [0x00][op:u8][tenant_len:u16le][payload_len:u32le]
//                [tenant bytes][payload bytes]
//              op 0x01 kBinInsert: payload = N x D x f64le coordinates.
//              op 0x02 kBinLocate: payload likewise; reply counts
//              inside/boundary/outside. Replies are JSON lines.
//   other .... one plain-text REPL command per line, byte-identical to the
//              stdin REPL (examples/hull_server.cpp): the reply is the raw
//              dispatch text, so a transcript replayed over the socket
//              diffs byte-exact against the stdio run.
//
// Nothing here allocates per byte: extract_frame is a pure scan over the
// connection's input buffer, and the JSON parser handles exactly the flat
// one-level objects the protocol admits (no nesting, no arrays) — a typed
// parse error, never UB, on anything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parhull::service {

inline constexpr char kBinaryMagic = '\0';
inline constexpr std::uint8_t kBinInsert = 0x01;
inline constexpr std::uint8_t kBinLocate = 0x02;
inline constexpr std::size_t kBinaryHeaderBytes = 8;

enum class FrameType : std::uint8_t {
  kNone,    // incomplete: wait for more bytes
  kText,    // plain REPL command line
  kJson,    // one-line JSON command object
  kBinary,  // length-prefixed binary frame
  kError,   // malformed or over-limit: reply + close the connection
};

struct Frame {
  FrameType type = FrameType::kNone;
  std::size_t consumed = 0;   // bytes to erase from the input buffer
  std::string_view body;      // text/json: the line without '\n';
                              // binary: the whole frame incl. header
  std::string error;          // set when type == kError
};

// Scan the start of `in` for one complete frame. `max_frame_bytes` bounds
// any single frame (text line, JSON line, or binary header+tenant+payload):
// a longer one is a protocol error — the abuse guard that keeps one
// connection from growing an unbounded buffer server-side.
Frame extract_frame(std::string_view in, std::size_t max_frame_bytes);

struct BinaryFrame {
  std::uint8_t op = 0;
  std::string_view tenant;   // empty = the connection's current tenant
  std::string_view payload;
};

// Decode a complete binary frame (extract_frame returned kBinary). False
// iff the header is inconsistent with the frame length.
bool parse_binary_frame(std::string_view frame, BinaryFrame& out);

// Encode a binary frame (client side: tests, bench, hull_client).
std::string build_binary_frame(std::uint8_t op, std::string_view tenant,
                               std::string_view payload);

// One field of a flat JSON object. `quoted` distinguishes "1" from 1 so a
// reply can echo the request's `id` token exactly as it arrived.
struct JsonField {
  std::string key;
  std::string value;  // unescaped for strings; raw token otherwise
  bool quoted = false;
};

// Parse a flat JSON object: string, number, true/false/null values only.
// Returns false (with *err set) on nesting, arrays, or malformed syntax.
bool parse_json_object(std::string_view text, std::vector<JsonField>& out,
                       std::string* err);

const JsonField* find_field(const std::vector<JsonField>& fields,
                            std::string_view key);

// JSON string escaping for reply emission ("\n" and friends, \u00XX for
// other control bytes).
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace parhull::service
