// Epoll-based async front-end of the hull service (docs/SERVICE.md): one
// event-loop thread owns the listening socket, every connection's fd and
// all socket IO; a fixed worker pool executes complete frames through the
// shared command dispatch (service/commands.h) against per-tenant engines
// (service/tenant_registry.h). Workers may block on a tenant's group
// commit — that is the design: blocking a worker never blocks intake,
// reads, or other connections' replies, and the batcher coalesces every
// waiter of a round into one engine batch.
//
// Admission control and load shedding (ROADMAP "engine -> service"):
//   * connection cap: past max_connections an accept is answered with a
//     single kOverloaded line and closed — the listener never stops
//     accepting, so the kernel backlog cannot silently fill;
//   * global queue depth: when max_queued_frames frames are already
//     waiting for workers, new frames are answered kOverloaded straight
//     from the event loop without dispatching (a shed reply can therefore
//     overtake earlier in-flight replies; JSON clients correlate by `id`);
//   * per-tenant depth, point budgets and per-command caps live in the
//     dispatch itself (SessionLimits);
//   * per-batch SLOs: every tenant's batcher runs under a Supervisor with
//     the configured deadline / watchdog / retry policy, so a wedged or
//     over-deadline batch resolves with a typed status instead of
//     stalling the tenant's writer forever.
//
// stop() (and the destructor) performs an orderly drain: intake closes,
// workers finish the frames already accepted, tenants' writers drain
// their group-commit queues, every fd is closed — clean under ASan/TSan,
// which the CI service-smoke job checks end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "parhull/common/status.h"
#include "parhull/service/connection.h"
#include "parhull/service/tenant_registry.h"

namespace parhull::service {

struct ServiceOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; HullServer::port() has the pick
  int worker_threads = 4;
  std::size_t max_connections = 4096;
  std::size_t max_frame_bytes = 1u << 20;   // one line / binary frame
  std::size_t max_queued_frames = 1024;     // global shed threshold
  // Cap on one connection's unflushed reply bytes. A peer that sends
  // commands without reading replies (or reads too slowly) trips it: the
  // backlog is dropped, one typed kOverloaded line is queued, and the
  // connection closes — backpressure becomes a typed shed instead of
  // unbounded server memory.
  std::size_t max_outbound_bytes = 8u << 20;
  TenantRegistry::Options tenants{};
};

class HullServer {
 public:
  explicit HullServer(ServiceOptions opts = {});
  HullServer(const HullServer&) = delete;
  HullServer& operator=(const HullServer&) = delete;
  ~HullServer();  // stop()

  // Bind + listen + spawn the event loop and workers. kOk, or kBadInput
  // when the address cannot be bound (port in use, bad host).
  HullStatus start();

  // Orderly drain (see header comment). Idempotent.
  void stop();

  bool running() const { return running_; }
  std::uint16_t port() const { return port_; }
  ServiceStats stats() const;
  TenantRegistry& registry() { return registry_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  using ConnPtr = std::shared_ptr<Connection>;

  void event_loop();
  void worker_loop();
  void handle_accept();
  void handle_readable(const ConnPtr& conn);
  void ingest_frames(const ConnPtr& conn);
  void idle_scan();
  // conn.io_mu must be held. Appends under max_outbound_bytes; sheds the
  // connection (typed kOverloaded + close) on overrun.
  void append_outbound_locked(Connection& conn, const std::string& bytes);
  void flush_writes(const ConnPtr& conn);
  void request_flush(const ConnPtr& conn);
  void maybe_close(const ConnPtr& conn);
  void close_conn(const ConnPtr& conn);
  void set_interest(const ConnPtr& conn, bool want_write);

  ServiceOptions opts_;
  TenantRegistry registry_;
  ServiceCounters counters_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Connections, owned by the event loop thread (other threads only ever
  // hold ConnPtrs handed out through the work/flush queues).
  std::unordered_map<int, ConnPtr> conns_;

  // Worker queue: connections with pending frames. `scheduled` and
  // `pending` of every Connection are guarded by work_mu_.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<ConnPtr> work_;
  std::size_t queued_frames_ = 0;
  bool workers_stop_ = false;

  // Flush channel: workers appended reply bytes; the event loop owns the
  // actual send().
  std::mutex flush_mu_;
  std::vector<ConnPtr> flush_;
};

}  // namespace parhull::service
