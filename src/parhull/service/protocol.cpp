#include "parhull/service/protocol.h"

#include <cstdio>
#include <cstring>

namespace parhull::service {

namespace {

inline std::uint16_t read_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t read_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

Frame error_frame(std::string msg) {
  Frame f;
  f.type = FrameType::kError;
  f.error = std::move(msg);
  return f;
}

}  // namespace

Frame extract_frame(std::string_view in, std::size_t max_frame_bytes) {
  Frame f;
  if (in.empty()) return f;

  if (in.front() == kBinaryMagic) {
    if (in.size() < kBinaryHeaderBytes) {
      if (max_frame_bytes < kBinaryHeaderBytes) {
        return error_frame("frame limit below binary header size");
      }
      return f;  // header incomplete
    }
    const auto* h = reinterpret_cast<const unsigned char*>(in.data());
    const std::size_t tenant_len = read_u16le(h + 2);
    const std::size_t payload_len = read_u32le(h + 4);
    const std::size_t total = kBinaryHeaderBytes + tenant_len + payload_len;
    if (total > max_frame_bytes) {
      return error_frame("binary frame exceeds the frame size limit");
    }
    if (in.size() < total) return f;  // body incomplete
    f.type = FrameType::kBinary;
    f.consumed = total;
    f.body = in.substr(0, total);
    return f;
  }

  const std::size_t nl = in.find('\n');
  if (nl == std::string_view::npos) {
    if (in.size() > max_frame_bytes) {
      return error_frame("line exceeds the frame size limit");
    }
    return f;  // line incomplete
  }
  if (nl > max_frame_bytes) {
    return error_frame("line exceeds the frame size limit");
  }
  std::string_view line = in.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  f.type = !line.empty() && line.front() == '{' ? FrameType::kJson
                                                : FrameType::kText;
  f.consumed = nl + 1;
  f.body = line;
  return f;
}

bool parse_binary_frame(std::string_view frame, BinaryFrame& out) {
  if (frame.size() < kBinaryHeaderBytes || frame.front() != kBinaryMagic) {
    return false;
  }
  const auto* h = reinterpret_cast<const unsigned char*>(frame.data());
  const std::size_t tenant_len = read_u16le(h + 2);
  const std::size_t payload_len = read_u32le(h + 4);
  if (frame.size() != kBinaryHeaderBytes + tenant_len + payload_len) {
    return false;
  }
  out.op = h[1];
  out.tenant = frame.substr(kBinaryHeaderBytes, tenant_len);
  out.payload = frame.substr(kBinaryHeaderBytes + tenant_len, payload_len);
  return true;
}

std::string build_binary_frame(std::uint8_t op, std::string_view tenant,
                               std::string_view payload) {
  std::string out;
  out.reserve(kBinaryHeaderBytes + tenant.size() + payload.size());
  out.push_back(kBinaryMagic);
  out.push_back(static_cast<char>(op));
  out.push_back(static_cast<char>(tenant.size() & 0xff));
  out.push_back(static_cast<char>((tenant.size() >> 8) & 0xff));
  const std::uint32_t plen = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((plen >> (8 * i)) & 0xff));
  }
  out.append(tenant);
  out.append(payload);
  return out;
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
}

bool parse_string(std::string_view s, std::size_t& i, std::string& out,
                  std::string* err) {
  // s[i] == '"'
  ++i;
  out.clear();
  while (i < s.size()) {
    char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) break;
      char e = s[i + 1];
      i += 2;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) {
            if (err) *err = "truncated \\u escape";
            return false;
          }
          unsigned v = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s[i + static_cast<std::size_t>(k)];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else {
              if (err) *err = "bad \\u escape";
              return false;
            }
          }
          i += 4;
          // The protocol only needs ASCII round-trips; encode the BMP code
          // point as UTF-8 so nothing is silently dropped.
          if (v < 0x80) {
            out.push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (v >> 6)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (v >> 12)));
            out.push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3f)));
          }
          break;
        }
        default:
          if (err) *err = "unknown escape";
          return false;
      }
      continue;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      if (err) *err = "raw control byte in string";
      return false;
    }
    out.push_back(c);
    ++i;
  }
  if (err) *err = "unterminated string";
  return false;
}

bool parse_scalar(std::string_view s, std::size_t& i, std::string& out,
                  std::string* err) {
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ' &&
         s[i] != '\t' && s[i] != '\r' && s[i] != '\n') {
    if (s[i] == '{' || s[i] == '[') {
      if (err) *err = "nested values are not part of the protocol";
      return false;
    }
    ++i;
  }
  if (i == start) {
    if (err) *err = "missing value";
    return false;
  }
  out.assign(s.substr(start, i - start));
  return true;
}

}  // namespace

bool parse_json_object(std::string_view text, std::vector<JsonField>& out,
                       std::string* err) {
  out.clear();
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') {
    if (err) *err = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    skip_ws(text, i);
    if (i != text.size()) {
      if (err) *err = "trailing bytes after object";
      return false;
    }
    return true;
  }
  while (true) {
    skip_ws(text, i);
    if (i >= text.size() || text[i] != '"') {
      if (err) *err = "expected a key string";
      return false;
    }
    JsonField field;
    if (!parse_string(text, i, field.key, err)) return false;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') {
      if (err) *err = "expected ':'";
      return false;
    }
    ++i;
    skip_ws(text, i);
    if (i >= text.size()) {
      if (err) *err = "missing value";
      return false;
    }
    if (text[i] == '"') {
      field.quoted = true;
      if (!parse_string(text, i, field.value, err)) return false;
    } else {
      if (!parse_scalar(text, i, field.value, err)) return false;
    }
    out.push_back(std::move(field));
    skip_ws(text, i);
    if (i >= text.size()) {
      if (err) *err = "unterminated object";
      return false;
    }
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      skip_ws(text, i);
      if (i != text.size()) {
        if (err) *err = "trailing bytes after object";
        return false;
      }
      return true;
    }
    if (err) *err = "expected ',' or '}'";
    return false;
  }
}

const JsonField* find_field(const std::vector<JsonField>& fields,
                            std::string_view key) {
  for (const JsonField& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace parhull::service
