// Deterministic synthetic point-set generators for every experiment.
//
// All generators take an explicit seed; same (seed, n) → same points.
// The paper's analysis requires a uniformly random insertion ORDER, not a
// particular spatial distribution; distributions here vary the hull size
// |T(Y)| regime (interior-heavy vs all-extreme) and degeneracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parhull/common/random.h"
#include "parhull/geometry/point.h"

namespace parhull {

enum class Distribution {
  kUniformBall,    // uniform in the unit d-ball (hull size ~ n^((d-1)/(d+1)))
  kOnSphere,       // uniform on the unit (d-1)-sphere: every point extreme
  kUniformCube,    // uniform in [-1,1]^d (hull size ~ log^{d-1} n)
  kGaussian,       // standard normal cloud
  kKuzmin,         // heavy-tailed radial distribution (clustered center)
};

const char* distribution_name(Distribution d);

template <int D>
PointSet<D> generate(Distribution dist, std::size_t n, std::uint64_t seed);

// Convenience wrappers.
template <int D>
PointSet<D> uniform_ball(std::size_t n, std::uint64_t seed) {
  return generate<D>(Distribution::kUniformBall, n, seed);
}
template <int D>
PointSet<D> on_sphere(std::size_t n, std::uint64_t seed) {
  return generate<D>(Distribution::kOnSphere, n, seed);
}
template <int D>
PointSet<D> uniform_cube(std::size_t n, std::uint64_t seed) {
  return generate<D>(Distribution::kUniformCube, n, seed);
}
template <int D>
PointSet<D> gaussian(std::size_t n, std::uint64_t seed) {
  return generate<D>(Distribution::kGaussian, n, seed);
}

// Integer-grid points (coordinates are integers in [-range, range]), for
// exact-arithmetic oracle tests: determinants fit in __int128 for small D.
template <int D>
PointSet<D> integer_grid(std::size_t n, int range, std::uint64_t seed);

// --- Degenerate-input generators (Section 6 experiments) ---

// 3D: n points on the surface of the cube [-1,1]^3, snapped to a g×g grid
// per face — masses of exactly-coplanar and collinear points.
PointSet<3> cube_surface_grid(std::size_t n, int grid, std::uint64_t seed);

// 3D: points on a regular lattice inside a cube (interior + coplanar faces).
PointSet<3> lattice_cube(int side);

// 2D: points on a convex polygon's boundary with many exactly-collinear
// points per edge.
PointSet<2> polygon_with_collinear(int vertices, int per_edge,
                                   std::uint64_t seed);

// 2D convex position: n points exactly on a circle of given radius,
// perturbed optionally (perturb = 0 keeps them exactly on integer-rounded
// circle positions — degenerate; perturb > 0 breaks ties).
PointSet<2> on_circle(std::size_t n, double perturb, std::uint64_t seed);

// Shuffle a point set into a uniformly random insertion order (the order S
// of the paper). Returns the permuted copy.
template <int D>
PointSet<D> random_order(const PointSet<D>& pts, std::uint64_t seed) {
  PointSet<D> out = pts;
  Rng rng(hash64(seed ^ 0xcafef00dd15ea5e5ULL));
  shuffle(out, rng);
  return out;
}

}  // namespace parhull
