#include "parhull/workload/generators.h"

#include <cmath>

#include "parhull/common/assert.h"

namespace parhull {

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniformBall: return "ball";
    case Distribution::kOnSphere: return "sphere";
    case Distribution::kUniformCube: return "cube";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kKuzmin: return "kuzmin";
  }
  return "?";
}

namespace {

template <int D>
Point<D> gaussian_point(Rng& rng) {
  Point<D> p;
  for (int j = 0; j < D; ++j) p[j] = rng.next_gaussian();
  return p;
}

template <int D>
Point<D> sample(Distribution dist, Rng& rng) {
  switch (dist) {
    case Distribution::kUniformBall: {
      // Rejection sampling from the cube; acceptance ≥ ~8% up to d=8.
      while (true) {
        Point<D> p;
        for (int j = 0; j < D; ++j) p[j] = rng.next_double(-1.0, 1.0);
        if (p.norm2() <= 1.0) return p;
      }
    }
    case Distribution::kOnSphere: {
      while (true) {
        Point<D> p = gaussian_point<D>(rng);
        double norm = p.norm();
        if (norm > 1e-12) return p * (1.0 / norm);
      }
    }
    case Distribution::kUniformCube: {
      Point<D> p;
      for (int j = 0; j < D; ++j) p[j] = rng.next_double(-1.0, 1.0);
      return p;
    }
    case Distribution::kGaussian:
      return gaussian_point<D>(rng);
    case Distribution::kKuzmin: {
      // Radial heavy tail: r = 1/sqrt(u) - 1 style transform, direction
      // uniform on the sphere.
      Point<D> dir;
      while (true) {
        dir = gaussian_point<D>(rng);
        double norm = dir.norm();
        if (norm > 1e-12) {
          dir = dir * (1.0 / norm);
          break;
        }
      }
      double u = rng.next_double();
      if (u < 1e-12) u = 1e-12;
      double r = std::sqrt(1.0 / u - 1.0);
      return dir * r;
    }
  }
  PARHULL_CHECK_MSG(false, "unknown distribution");
  return Point<D>{};
}

}  // namespace

template <int D>
PointSet<D> generate(Distribution dist, std::size_t n, std::uint64_t seed) {
  PointSet<D> pts(n);
  Rng base(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = base.fork(i);
    pts[i] = sample<D>(dist, rng);
  }
  return pts;
}

template <int D>
PointSet<D> integer_grid(std::size_t n, int range, std::uint64_t seed) {
  PointSet<D> pts(n);
  Rng base(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = base.fork(i);
    for (int j = 0; j < D; ++j) {
      pts[i][j] = static_cast<double>(
          static_cast<long long>(rng.next_below(
              static_cast<std::uint64_t>(2 * range + 1))) -
          range);
    }
  }
  return pts;
}

PointSet<3> cube_surface_grid(std::size_t n, int grid, std::uint64_t seed) {
  PARHULL_CHECK(grid >= 2);
  PointSet<3> pts(n);
  Rng base(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = base.fork(i);
    int face = static_cast<int>(rng.next_below(6));
    int axis = face / 2;
    double fixed = (face % 2 == 0) ? -1.0 : 1.0;
    // Snap the two free coordinates to the grid: exact coplanar/collinear
    // masses by construction (grid coordinates are exactly representable).
    double u = -1.0 + 2.0 * static_cast<double>(rng.next_below(
                                static_cast<std::uint64_t>(grid) + 1)) /
                           grid;
    double v = -1.0 + 2.0 * static_cast<double>(rng.next_below(
                                static_cast<std::uint64_t>(grid) + 1)) /
                           grid;
    Point3 p;
    p[axis] = fixed;
    p[(axis + 1) % 3] = u;
    p[(axis + 2) % 3] = v;
    pts[i] = p;
  }
  return pts;
}

PointSet<3> lattice_cube(int side) {
  PARHULL_CHECK(side >= 2);
  PointSet<3> pts;
  pts.reserve(static_cast<std::size_t>(side) * side * side);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      for (int k = 0; k < side; ++k) {
        Point3 p;
        p[0] = static_cast<double>(i);
        p[1] = static_cast<double>(j);
        p[2] = static_cast<double>(k);
        pts.push_back(p);
      }
    }
  }
  return pts;
}

PointSet<2> polygon_with_collinear(int vertices, int per_edge,
                                   std::uint64_t seed) {
  PARHULL_CHECK(vertices >= 3 && per_edge >= 0);
  (void)seed;
  PointSet<2> pts;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // Vertices on a large integer-ish polygon; edge-interior points are exact
  // convex combinations at dyadic parameters, hence exactly collinear.
  std::vector<Point2> corners(static_cast<std::size_t>(vertices));
  for (int i = 0; i < vertices; ++i) {
    double ang = kTwoPi * i / vertices;
    corners[static_cast<std::size_t>(i)] = {
        {std::round(1024.0 * std::cos(ang)), std::round(1024.0 * std::sin(ang))}};
  }
  for (int i = 0; i < vertices; ++i) {
    const Point2& a = corners[static_cast<std::size_t>(i)];
    const Point2& b = corners[static_cast<std::size_t>((i + 1) % vertices)];
    pts.push_back(a);
    for (int k = 1; k <= per_edge; ++k) {
      // Dyadic parameter keeps the combination exact when coordinates are
      // small integers: t = k / 2^ceil(log2(per_edge+1)) is not required;
      // t = k/(per_edge+1) with integer endpoints is exact only for dyadic
      // denominators, so we use t = k * (1 / 2^10) spacing along the edge.
      double t = static_cast<double>(k) / (per_edge + 1);
      Point2 p;
      p[0] = a[0] + (b[0] - a[0]) * t;
      p[1] = a[1] + (b[1] - a[1]) * t;
      pts.push_back(p);
    }
  }
  return pts;
}

PointSet<2> on_circle(std::size_t n, double perturb, std::uint64_t seed) {
  PointSet<2> pts(n);
  Rng base(seed);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = base.fork(i);
    double ang = rng.next_double(0.0, kTwoPi);
    double r = 1.0 + (perturb > 0 ? rng.next_double(0.0, perturb) : 0.0);
    pts[i] = {{r * std::cos(ang), r * std::sin(ang)}};
  }
  return pts;
}

// Explicit instantiations for the dimensions the library ships.
template PointSet<2> generate<2>(Distribution, std::size_t, std::uint64_t);
template PointSet<3> generate<3>(Distribution, std::size_t, std::uint64_t);
template PointSet<4> generate<4>(Distribution, std::size_t, std::uint64_t);
template PointSet<5> generate<5>(Distribution, std::size_t, std::uint64_t);
template PointSet<6> generate<6>(Distribution, std::size_t, std::uint64_t);

template PointSet<2> integer_grid<2>(std::size_t, int, std::uint64_t);
template PointSet<3> integer_grid<3>(std::size_t, int, std::uint64_t);
template PointSet<4> integer_grid<4>(std::size_t, int, std::uint64_t);
template PointSet<5> integer_grid<5>(std::size_t, int, std::uint64_t);

}  // namespace parhull
