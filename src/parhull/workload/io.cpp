#include "parhull/workload/io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace parhull {

template <int D>
bool read_points(std::istream& in, PointSet<D>& out) {
  out.clear();
  std::string line;
  while (std::getline(in, line)) {
    // Skip comments and blanks.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    Point<D> p;
    for (int c = 0; c < D; ++c) {
      // Reject non-finite coordinates here, at the boundary: whether
      // operator>> accepts "nan"/"inf" tokens varies by C++ library, and a
      // huge literal like 1e999 parses to +inf on some of them. The exact
      // predicates require finite doubles (geometry/point.h).
      if (!(ls >> p[c]) || !std::isfinite(p[c])) return false;
    }
    double extra;
    if (ls >> extra) return false;  // wrong arity
    out.push_back(p);
  }
  return true;
}

template <int D>
bool read_points_file(const std::string& path, PointSet<D>& out) {
  std::ifstream in(path);
  if (!in) return false;
  return read_points<D>(in, out);
}

template <int D>
void write_points(std::ostream& os, const PointSet<D>& pts) {
  os << std::setprecision(17);
  for (const auto& p : pts) {
    for (int c = 0; c < D; ++c) os << (c ? " " : "") << p[c];
    os << '\n';
  }
}

template <int D>
bool write_points_file(const std::string& path, const PointSet<D>& pts) {
  std::ofstream os(path);
  if (!os) return false;
  write_points<D>(os, pts);
  return static_cast<bool>(os);
}

void write_off(std::ostream& os, const PointSet<3>& pts,
               const std::vector<std::array<PointId, 3>>& facets) {
  os << "OFF\n" << pts.size() << ' ' << facets.size() << " 0\n";
  os << std::setprecision(17);
  for (const auto& p : pts) {
    os << p[0] << ' ' << p[1] << ' ' << p[2] << '\n';
  }
  for (const auto& f : facets) {
    os << "3 " << f[0] << ' ' << f[1] << ' ' << f[2] << '\n';
  }
}

bool write_off_file(const std::string& path, const PointSet<3>& pts,
                    const std::vector<std::array<PointId, 3>>& facets) {
  std::ofstream os(path);
  if (!os) return false;
  write_off(os, pts, facets);
  return static_cast<bool>(os);
}

template bool read_points<2>(std::istream&, PointSet<2>&);
template bool read_points<3>(std::istream&, PointSet<3>&);
template bool read_points<4>(std::istream&, PointSet<4>&);
template bool read_points_file<2>(const std::string&, PointSet<2>&);
template bool read_points_file<3>(const std::string&, PointSet<3>&);
template bool read_points_file<4>(const std::string&, PointSet<4>&);
template void write_points<2>(std::ostream&, const PointSet<2>&);
template void write_points<3>(std::ostream&, const PointSet<3>&);
template void write_points<4>(std::ostream&, const PointSet<4>&);
template bool write_points_file<2>(const std::string&, const PointSet<2>&);
template bool write_points_file<3>(const std::string&, const PointSet<3>&);
template bool write_points_file<4>(const std::string&, const PointSet<4>&);

}  // namespace parhull
