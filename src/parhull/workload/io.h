// Point-cloud and mesh IO: whitespace-separated coordinate files (.xyz
// style, one point per line) and OFF output for 3D hull meshes.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "parhull/common/types.h"
#include "parhull/geometry/point.h"

namespace parhull {

// One point per line, D whitespace-separated coordinates. Lines starting
// with '#' and blank lines are skipped. Returns false on parse error or
// wrong arity. Non-finite coordinates (nan/inf, or literals that overflow
// to inf) are rejected — the exact predicates require finite doubles.
template <int D>
bool read_points(std::istream& in, PointSet<D>& out);
template <int D>
bool read_points_file(const std::string& path, PointSet<D>& out);

template <int D>
void write_points(std::ostream& os, const PointSet<D>& pts);
template <int D>
bool write_points_file(const std::string& path, const PointSet<D>& pts);

// OFF mesh: 3D points + triangular facets (vertex index triples).
void write_off(std::ostream& os, const PointSet<3>& pts,
               const std::vector<std::array<PointId, 3>>& facets);
bool write_off_file(const std::string& path, const PointSet<3>& pts,
                    const std::vector<std::array<PointId, 3>>& facets);

}  // namespace parhull
