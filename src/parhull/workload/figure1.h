// The worked example of Figure 1 / Section 5.3, as a concrete point set.
//
// Hull u-v-w-x-y-z-t with a, b, c to be added in lexicographical (= here
// insertion) order. Coordinates are chosen so the narrative's visibility
// relations hold exactly:
//   a sees edges x-y and y-z;          (x-a replaces x-y, a-z replaces y-z)
//   b sees edges w-x and x-y;          (w-b replaces w-x)
//   c sees edges v-w, w-x, x-y, y-z;   (v-c replaces v-w)
//   then b sees x-a (b-a replaces x-a), c sees a-z (c-z replaces a-z),
//   and c sees both w-b and b-a, which get buried.
#pragma once

#include <array>
#include <string>

#include "parhull/geometry/point.h"

namespace parhull::figure1 {

// Insertion order: the seven hull points first, then a, b, c.
inline constexpr int kU = 0, kV = 1, kW = 2, kX = 3, kY = 4, kZ = 5, kT = 6,
                     kA = 7, kB = 8, kC = 9;

inline PointSet<2> points() {
  return {
      {{-5.0, 0.0}},   // u
      {{-4.0, 3.0}},   // v
      {{-2.0, 4.5}},   // w
      {{0.0, 5.0}},    // x
      {{2.0, 4.5}},    // y
      {{4.0, 3.0}},    // z
      {{5.0, 0.0}},    // t
      {{2.5, 5.2}},    // a
      {{-0.5, 5.5}},   // b
      {{0.0, 10.0}},   // c
  };
}

inline const char* name(std::uint32_t id) {
  static const char* names[] = {"u", "v", "w", "x", "y", "z", "t",
                                "a", "b", "c"};
  return id < 10 ? names[id] : "?";
}

inline std::string edge_name(std::uint32_t p, std::uint32_t q) {
  return std::string(name(p)) + "-" + name(q);
}

}  // namespace parhull::figure1
