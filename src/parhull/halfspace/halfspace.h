// Section 7: intersection of half-spaces, via point–hyperplane duality on
// top of the parallel incremental hull.
//
// A half-space {x : n·x <= c} with c > 0 (the origin strictly inside)
// dualizes to the point n/c. The convex hull of the dual points is dual to
// the intersection polytope: hull FACETS correspond to intersection
// VERTICES (solve q_i · v = 1 for the facet's dual points q_i), and hull
// VERTICES correspond to the non-redundant (essential) half-spaces.
//
// Because the reduction runs the parallel incremental hull on the duals,
// the configuration dependence graph of the half-space problem is exactly
// the hull's — 2-support, depth O(log m) whp (paper, Section 7) — and the
// instrumentation carries over.
#pragma once

#include <cstdint>
#include <vector>

#include "parhull/common/run_control.h"
#include "parhull/common/status.h"
#include "parhull/common/types.h"
#include "parhull/geometry/point.h"

namespace parhull {

template <int D>
struct HalfSpace {
  Point<D> normal;  // need not be unit length
  double offset;    // n·x <= offset; offset must be > 0 (origin inside)
};

template <int D>
struct HalfspaceIntersection {
  // kBadInput: fewer than D+1 half-spaces, a non-positive offset (origin
  // not strictly inside), or an unbounded intersection. kDegenerateInput:
  // duals not full-dimensional, or a singular vertex solve. Other statuses
  // propagate from the underlying hull run.
  HullStatus status = HullStatus::kBadInput;
  bool ok = false;  // status == kOk
  // Vertices of the intersection polytope (approximate coordinates from a
  // D x D linear solve; the combinatorial structure is exact).
  std::vector<Point<D>> vertices;
  // Indices of essential (non-redundant) half-spaces.
  std::vector<std::uint32_t> essential;
  // For each vertex, the D half-space indices whose boundaries meet there.
  std::vector<std::vector<std::uint32_t>> vertex_defs;
  // Instrumentation from the underlying parallel hull run.
  std::uint64_t facets_created = 0;
  std::uint64_t visibility_tests = 0;
  std::uint32_t dependence_depth = 0;
  std::uint32_t max_round = 0;
};

// Intersect half-spaces that all strictly contain the origin. The input
// order is the insertion order (shuffle for the whp guarantees). Requires
// at least D+1 half-spaces whose duals are full-dimensional and a BOUNDED
// intersection (the dual hull must contain the origin; returns ok=false
// otherwise). An optional controller supervises the underlying hull run
// (deadline / cancellation) and is polled in the vertex-solve loop; a
// stopped run returns the controller's stop status.
template <int D>
HalfspaceIntersection<D> intersect_halfspaces(
    const std::vector<HalfSpace<D>>& hs, RunController* controller = nullptr);

// Membership test: is x in every half-space?
template <int D>
bool halfspaces_contain(const std::vector<HalfSpace<D>>& hs,
                        const Point<D>& x, double tol = 1e-9);

// Brute-force oracle: enumerate all D-subsets, solve for the candidate
// vertex, keep feasible ones. O(m^D · m); small inputs only.
template <int D>
std::vector<Point<D>> brute_force_halfspace_vertices(
    const std::vector<HalfSpace<D>>& hs, double tol = 1e-9);

// Generator: m half-spaces tangent to the unit sphere at random directions
// (offset 1), all essential, bounded intersection containing the origin.
template <int D>
std::vector<HalfSpace<D>> random_tangent_halfspaces(std::size_t m,
                                                    std::uint64_t seed,
                                                    double offset_spread = 0.0);

}  // namespace parhull
