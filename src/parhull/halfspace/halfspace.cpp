#include "parhull/halfspace/halfspace.h"

#include <cmath>
#include <set>

#include "parhull/common/assert.h"
#include "parhull/common/random.h"
#include "parhull/core/parallel_hull.h"
#include "parhull/workload/generators.h"

namespace parhull {

namespace {

// Solve A v = b for a D x D system with partial pivoting. Returns false if
// (numerically) singular.
template <int D>
bool solve(double a[D][D], double b[D], Point<D>& out) {
  int perm[D];
  for (int i = 0; i < D; ++i) perm[i] = i;
  for (int col = 0; col < D; ++col) {
    int best = col;
    for (int r = col + 1; r < D; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[best][col])) best = r;
    }
    if (std::fabs(a[best][col]) < 1e-14) return false;
    if (best != col) {
      for (int c = 0; c < D; ++c) std::swap(a[col][c], a[best][c]);
      std::swap(b[col], b[best]);
    }
    for (int r = col + 1; r < D; ++r) {
      double factor = a[r][col] / a[col][col];
      for (int c = col; c < D; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  for (int r = D - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < D; ++c) acc -= a[r][c] * out[c];
    out[r] = acc / a[r][r];
  }
  return true;
}

}  // namespace

template <int D>
HalfspaceIntersection<D> intersect_halfspaces(
    const std::vector<HalfSpace<D>>& hs, RunController* controller) {
  HalfspaceIntersection<D> res;
  if (hs.size() < static_cast<std::size_t>(D) + 1) return res;  // kBadInput
  for (const auto& h : hs) {
    if (!(h.offset > 0)) return res;  // origin must be strictly inside
    if (!finite<D>(h.normal) || !std::isfinite(h.offset)) {
      return res;  // kBadInput: non-finite coefficients never reach duals
    }
  }
  // Dual points q = n / c; remember the original index through the order
  // permutation that prepare_input may apply.
  PointSet<D> duals(hs.size());
  for (std::size_t i = 0; i < hs.size(); ++i) {
    duals[i] = hs[i].normal * (1.0 / hs[i].offset);
  }
  // prepare_input reorders; track indices by appending an id via a parallel
  // array keyed on coordinates is fragile — instead reorder ourselves with
  // the same greedy rule and keep ids.
  std::vector<std::uint32_t> order(duals.size());
  {
    std::vector<std::size_t> chosen;
    std::vector<const Point<D>*> probe;
    for (std::size_t i = 0;
         i < duals.size() && chosen.size() < static_cast<std::size_t>(D) + 1;
         ++i) {
      probe.clear();
      for (std::size_t c : chosen) probe.push_back(&duals[c]);
      probe.push_back(&duals[i]);
      if (affinely_independent<D>(probe)) chosen.push_back(i);
    }
    if (chosen.size() < static_cast<std::size_t>(D) + 1) {
      res.status = HullStatus::kDegenerateInput;  // duals not full-dim
      return res;
    }
    std::vector<char> is_chosen(duals.size(), 0);
    std::size_t out = 0;
    for (std::size_t c : chosen) {
      order[out++] = static_cast<std::uint32_t>(c);
      is_chosen[c] = 1;
    }
    for (std::size_t i = 0; i < duals.size(); ++i) {
      if (!is_chosen[i]) order[out++] = static_cast<std::uint32_t>(i);
    }
  }
  PointSet<D> reordered(duals.size());
  for (std::size_t i = 0; i < duals.size(); ++i) reordered[i] = duals[order[i]];

  ParallelHull<D, RidgeMapChained> hull;
  if (controller != nullptr) {
    typename ParallelHull<D, RidgeMapChained>::Params hp;
    hp.controller = controller;
    hull.set_params(hp);
  }
  auto hres = hull.run(reordered);
  if (!hres.ok) {
    res.status = hres.status;  // propagate the hull's typed failure
    return res;
  }
  res.facets_created = hres.facets_created;
  res.visibility_tests = hres.visibility_tests;
  res.dependence_depth = hres.dependence_depth;
  res.max_round = hres.max_round;

  // The duality is valid only if the dual hull strictly contains the dual
  // origin (bounded primal intersection). The hull code orients facets
  // against the initial-simplex centroid; re-check against the origin.
  Point<D> origin{};
  std::set<std::uint32_t> essential;
  for (FacetId id : hres.hull) {
    if (PARHULL_RUN_POLL(controller, 0)) {
      res.status = controller->stop_status();
      return res;
    }
    const auto& f = hull.facet(id);
    if (visible<D>(reordered, f.vertices, origin)) {
      return res;  // origin outside the dual hull: unbounded intersection
    }
    // Primal vertex v: q_i · v = 1 for the facet's dual points.
    double a[D][D];
    double b[D];
    for (int r = 0; r < D; ++r) {
      const Point<D>& q = reordered[f.vertices[static_cast<std::size_t>(r)]];
      for (int c = 0; c < D; ++c) a[r][c] = q[c];
      b[r] = 1.0;
    }
    Point<D> v{};
    if (!solve<D>(a, b, v)) {
      res.status = HullStatus::kDegenerateInput;  // singular vertex solve
      return res;
    }
    res.vertices.push_back(v);
    std::vector<std::uint32_t> defs;
    for (int r = 0; r < D; ++r) {
      std::uint32_t original =
          order[f.vertices[static_cast<std::size_t>(r)]];
      defs.push_back(original);
      essential.insert(original);
    }
    res.vertex_defs.push_back(std::move(defs));
  }
  res.essential.assign(essential.begin(), essential.end());
  res.status = HullStatus::kOk;
  res.ok = true;
  return res;
}

template <int D>
bool halfspaces_contain(const std::vector<HalfSpace<D>>& hs, const Point<D>& x,
                        double tol) {
  for (const auto& h : hs) {
    if (h.normal.dot(x) > h.offset + tol) return false;
  }
  return true;
}

template <int D>
std::vector<Point<D>> brute_force_halfspace_vertices(
    const std::vector<HalfSpace<D>>& hs, double tol) {
  std::vector<Point<D>> vertices;
  const std::size_t m = hs.size();
  std::vector<std::size_t> idx(static_cast<std::size_t>(D));
  // All D-combinations.
  for (int i = 0; i < D; ++i) idx[static_cast<std::size_t>(i)] = static_cast<std::size_t>(i);
  if (m < static_cast<std::size_t>(D)) return vertices;
  while (true) {
    double a[D][D];
    double b[D];
    for (int r = 0; r < D; ++r) {
      for (int c = 0; c < D; ++c) a[r][c] = hs[idx[static_cast<std::size_t>(r)]].normal[c];
      b[r] = hs[idx[static_cast<std::size_t>(r)]].offset;
    }
    Point<D> v{};
    if (solve<D>(a, b, v) && halfspaces_contain(hs, v, tol)) {
      bool duplicate = false;
      for (const auto& u : vertices) {
        double d2 = (u - v).norm2();
        if (d2 < tol) duplicate = true;
      }
      if (!duplicate) vertices.push_back(v);
    }
    int i = D - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == m - static_cast<std::size_t>(D - i)) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < D; ++j) idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
  return vertices;
}

template <int D>
std::vector<HalfSpace<D>> random_tangent_halfspaces(std::size_t m,
                                                    std::uint64_t seed,
                                                    double offset_spread) {
  auto dirs = on_sphere<D>(m, seed);
  std::vector<HalfSpace<D>> hs(m);
  Rng rng(seed ^ 0xabcdef12345ULL);
  for (std::size_t i = 0; i < m; ++i) {
    hs[i].normal = dirs[i];
    hs[i].offset = 1.0 + (offset_spread > 0 ? rng.next_double(0, offset_spread) : 0.0);
  }
  return hs;
}

// Explicit instantiations.
template struct HalfSpace<2>;
template struct HalfSpace<3>;
template struct HalfSpace<4>;
template HalfspaceIntersection<2> intersect_halfspaces<2>(
    const std::vector<HalfSpace<2>>&, RunController*);
template HalfspaceIntersection<3> intersect_halfspaces<3>(
    const std::vector<HalfSpace<3>>&, RunController*);
template HalfspaceIntersection<4> intersect_halfspaces<4>(
    const std::vector<HalfSpace<4>>&, RunController*);
template bool halfspaces_contain<2>(const std::vector<HalfSpace<2>>&,
                                    const Point<2>&, double);
template bool halfspaces_contain<3>(const std::vector<HalfSpace<3>>&,
                                    const Point<3>&, double);
template bool halfspaces_contain<4>(const std::vector<HalfSpace<4>>&,
                                    const Point<4>&, double);
template std::vector<Point<2>> brute_force_halfspace_vertices<2>(
    const std::vector<HalfSpace<2>>&, double);
template std::vector<Point<3>> brute_force_halfspace_vertices<3>(
    const std::vector<HalfSpace<3>>&, double);
template std::vector<HalfSpace<2>> random_tangent_halfspaces<2>(std::size_t,
                                                                std::uint64_t,
                                                                double);
template std::vector<HalfSpace<3>> random_tangent_halfspaces<3>(std::size_t,
                                                                std::uint64_t,
                                                                double);
template std::vector<HalfSpace<4>> random_tangent_halfspaces<4>(std::size_t,
                                                                std::uint64_t,
                                                                double);

}  // namespace parhull
