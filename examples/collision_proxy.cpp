// Build a convex collision proxy for a noisy 3D scan with the parallel
// hull, then answer support queries (the core primitive of GJK-style
// collision pipelines) against the proxy.
//
//   ./example_collision_proxy [points] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "parhull/core/parallel_hull.h"
#include "parhull/workload/generators.h"

using namespace parhull;

namespace {

// A synthetic "scanned object": a torus-ish shell with noise.
PointSet<3> scan_cloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  PointSet<3> pts(n);
  constexpr double kTwoPi = 6.283185307179586;
  for (auto& p : pts) {
    double u = rng.next_double(0, kTwoPi);
    double v = rng.next_double(0, kTwoPi);
    double noise = 0.02 * rng.next_gaussian();
    double r = 1.0 + (0.35 + noise) * std::cos(v);
    p = {{r * std::cos(u), r * std::sin(u), (0.35 + noise) * std::sin(v)}};
  }
  return pts;
}

// Signed volume of the hull via the divergence theorem over facets.
double hull_volume(const ParallelHull<3>& hull,
                   const std::vector<FacetId>& facets, const PointSet<3>& pts) {
  double vol = 0;
  for (FacetId id : facets) {
    const auto& f = hull.facet(id);
    const Point3 &a = pts[f.vertices[0]], &b = pts[f.vertices[1]],
                 &c = pts[f.vertices[2]];
    // Outward facets: vol += det(a,b,c)/6. Our orientation convention makes
    // the interior invisible, i.e. orient(vertices, interior) < 0; the
    // corresponding outward triple contributes positively when wound so
    // that det(a, b, c) has the outward sign — flip via the interior test.
    double det = a[0] * (b[1] * c[2] - b[2] * c[1]) -
                 a[1] * (b[0] * c[2] - b[2] * c[0]) +
                 a[2] * (b[0] * c[1] - b[1] * c[0]);
    vol += det / 6.0;
  }
  return std::fabs(vol);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  PointSet<3> cloud = random_order(scan_cloud(n, seed), seed + 1);
  if (!prepare_input<3>(cloud)) {
    std::cerr << "degenerate scan\n";
    return 1;
  }
  ParallelHull<3> hull;
  auto res = hull.run(cloud);

  std::cout << "scan points:      " << n << "\n"
            << "proxy facets:     " << res.hull.size() << "\n"
            << "dependence depth: " << res.dependence_depth << " (ln n = "
            << std::log(static_cast<double>(n)) << ")\n"
            << "proxy volume:     " << hull_volume(hull, res.hull, cloud)
            << "\n\n";

  // Support queries: farthest proxy vertex along a direction. This is what
  // a GJK loop asks the proxy thousands of times per frame.
  std::cout << "support queries (direction -> extremal vertex):\n";
  std::vector<Point3> dirs = {{{1, 0, 0}}, {{0, 1, 0}}, {{0, 0, 1}},
                              {{-1, -1, 0.5}}};
  // Collect hull vertices once.
  std::vector<PointId> verts;
  {
    std::vector<char> seen(cloud.size(), 0);
    for (FacetId id : res.hull) {
      for (PointId v : hull.facet(id).vertices) {
        if (!seen[v]) {
          seen[v] = 1;
          verts.push_back(v);
        }
      }
    }
  }
  std::cout << "proxy vertices:   " << verts.size() << " (vs " << n
            << " scan points — the proxy is what you ship)\n";
  for (const auto& d : dirs) {
    PointId best = verts.front();
    double best_dot = cloud[best].dot(d);
    for (PointId v : verts) {
      double dot = cloud[v].dot(d);
      if (dot > best_dot) {
        best_dot = dot;
        best = v;
      }
    }
    std::cout << "  (" << d[0] << "," << d[1] << "," << d[2] << ") -> vertex "
              << best << " at (" << cloud[best][0] << ", " << cloud[best][1]
              << ", " << cloud[best][2] << ")\n";
  }
  return 0;
}
