// Interactive-ish exploration of the paper's central quantity: the
// configuration dependence graph depth. Pick a distribution and watch
// depth track ln n as n grows — the empirical face of Theorem 1.1.
//
//   ./example_depth_explorer [ball|sphere|cube|gaussian|kuzmin] [max_n]
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "parhull/core/parallel_hull.h"
#include "parhull/workload/generators.h"

using namespace parhull;

int main(int argc, char** argv) {
  Distribution dist = Distribution::kUniformBall;
  if (argc > 1) {
    if (std::strcmp(argv[1], "sphere") == 0) dist = Distribution::kOnSphere;
    if (std::strcmp(argv[1], "cube") == 0) dist = Distribution::kUniformCube;
    if (std::strcmp(argv[1], "gaussian") == 0) dist = Distribution::kGaussian;
    if (std::strcmp(argv[1], "kuzmin") == 0) dist = Distribution::kKuzmin;
  }
  std::size_t max_n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128000;

  std::cout << "distribution: " << distribution_name(dist) << "\n"
            << "       n     ln n   depth   rounds   depth/ln n   hull edges\n";
  for (std::size_t n = 1000; n <= max_n; n *= 2) {
    auto pts = random_order(generate<2>(dist, n, 3), 5);
    if (!prepare_input<2>(pts)) continue;
    ParallelHull<2> hull;
    auto res = hull.run(pts);
    double ln_n = std::log(static_cast<double>(n));
    std::printf("%8zu   %6.2f   %5u   %6u   %10.3f   %10zu\n", n, ln_n,
                res.dependence_depth, res.max_round,
                res.dependence_depth / ln_n, res.hull.size());
  }
  std::cout << "\nTheorem 1.1: depth = O(log n) whp — the last column should "
               "not grow.\n";
  return 0;
}
