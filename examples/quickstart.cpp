// Quickstart: compute a 3D convex hull with the parallel randomized
// incremental algorithm and print what the instrumentation sees.
//
//   ./example_quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "parhull/core/parallel_hull.h"
#include "parhull/workload/generators.h"

int main(int argc, char** argv) {
  using namespace parhull;
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Make some points (any PointSet<3> works; these are uniform in the
  //    unit ball) and shuffle them: the algorithm's guarantees hold for a
  //    uniformly random insertion order.
  PointSet<3> pts = uniform_ball<3>(n, seed);
  pts = random_order(pts, seed + 1);

  // 2. Prepare: move an affinely independent simplex to the front.
  if (!prepare_input<3>(pts)) {
    std::cerr << "input is degenerate (all points coplanar?)\n";
    return 1;
  }

  // 3. Run. ParallelHull is a template over the dimension and the ridge-map
  //    backend (Algorithm 4 CAS probing by default).
  ParallelHull<3> hull;
  auto result = hull.run(pts);

  std::cout << "points:            " << n << "\n"
            << "hull facets:       " << result.hull.size() << "\n"
            << "facets created:    " << result.facets_created << "\n"
            << "visibility tests:  " << result.visibility_tests << "\n"
            << "dependence depth:  " << result.dependence_depth
            << "   (paper: O(log n) whp; ln n = "
            << std::log(static_cast<double>(n)) << ")\n"
            << "process rounds:    " << result.max_round << "\n"
            << "buried ridge pairs:" << result.buried_pairs << "\n";

  // 4. Read facets back: vertex indices into pts, outward oriented.
  const Facet<3>& f = hull.facet(result.hull.front());
  std::cout << "first facet:       (" << f.vertices[0] << ", " << f.vertices[1]
            << ", " << f.vertices[2] << ")\n";
  return 0;
}
