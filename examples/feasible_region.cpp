// Compute the feasible region of a system of linear constraints (an LP
// feasibility polytope) with the Section 7 half-space intersection: the
// constraints dualize to points and the parallel hull does the work.
//
//   ./example_feasible_region [constraints] [seed]
#include <cstdlib>
#include <iostream>

#include "parhull/common/random.h"
#include "parhull/halfspace/halfspace.h"

using namespace parhull;

int main(int argc, char** argv) {
  std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Random constraints n·x <= c all satisfied by the origin: tangent planes
  // of the unit sphere pushed outward by random slack.
  auto constraints = random_tangent_halfspaces<3>(m, seed, 1.0);
  Rng rng(seed + 1);
  shuffle(constraints, rng);  // random insertion order: the whp guarantee

  auto region = intersect_halfspaces<3>(constraints);
  if (!region.ok) {
    std::cerr << "region unbounded or degenerate\n";
    return 1;
  }
  std::cout << "constraints:       " << m << "\n"
            << "essential:         " << region.essential.size() << "  ("
            << (m - region.essential.size()) << " redundant)\n"
            << "region vertices:   " << region.vertices.size() << "\n"
            << "dependence depth:  " << region.dependence_depth << "\n\n";

  std::cout << "first vertices (each tight on 3 constraints):\n";
  for (std::size_t i = 0; i < region.vertices.size() && i < 5; ++i) {
    const auto& v = region.vertices[i];
    std::cout << "  (" << v[0] << ", " << v[1] << ", " << v[2]
              << ")  constraints {";
    for (std::size_t k = 0; k < region.vertex_defs[i].size(); ++k) {
      std::cout << (k ? ", " : "") << region.vertex_defs[i][k];
    }
    std::cout << "}\n";
  }

  // Feasibility checks.
  std::cout << "\nfeasibility checks:\n";
  for (const Point3& q : {Point3{{0, 0, 0}}, Point3{{0.5, 0.5, 0.5}},
                          Point3{{3, 3, 3}}}) {
    std::cout << "  (" << q[0] << "," << q[1] << "," << q[2] << ") -> "
              << (halfspaces_contain<3>(constraints, q) ? "feasible"
                                                        : "infeasible")
              << "\n";
  }
  return 0;
}
