// Network daemon for the hull service (docs/SERVICE.md): binds the
// epoll-based HullServer and serves the line-oriented JSON / plain-text /
// length-prefixed binary protocol over TCP, multiplexing the REPL verbs
// across per-tenant engines. SIGINT/SIGTERM (or `quit` on any connection,
// which only closes that connection — the daemon is stopped by signal)
// drains accepted work and exits cleanly.
//
//   ./example_hull_service --port 7070 --workers 4
//
// Flags:
//   --host ADDR            bind address        (default 127.0.0.1)
//   --port P               TCP port, 0 = ephemeral (default 0; the chosen
//                          port is printed on stdout either way)
//   --workers N            command worker threads (default 4)
//   --max-connections N    admission cap; beyond it accepts are answered
//                          kOverloaded and closed (default 4096)
//   --max-queued-frames N  global shed threshold (default 1024)
//   --max-tenants N        tenant registry cap (default 64)
//   --max-pending N        per-tenant batcher depth before shed (def. 256)
//   --max-points-per-command N / --max-points-per-tenant N
//                          per-tenant admission budgets
//   --deadline-ms MS       per-batch Supervisor deadline (the SLO knob)
//   --watchdog-ms MS       per-batch stall watchdog
//   --idle-timeout-ms MS   close connections idle this long (slow-loris
//                          guard; 0 disables, default 30000)
//   --max-outbound-bytes N per-connection reply backlog cap (default 8 MiB)
//   --data-dir DIR         durability root: per-tenant WAL + checkpoints
//                          under DIR/<tenant>/, recovered at startup (one
//                          "recovered ..." line per tenant precedes the
//                          readiness line). Empty = in-memory only.
//   --sync MODE            WAL sync policy: always | interval | none
//                          (default always: acked implies fsync'd)
//   --sync-interval-ms MS  fsync cadence for --sync interval (default 50)
//   --checkpoint-bytes N   auto-checkpoint once the log exceeds N bytes
//                          (0 = only explicit `persist`; default 8 MiB)
//
// Prints exactly one readiness line ("hull_service listening on
// HOST:PORT") so scripts (scripts/service_smoke.sh, bench_e18) can wait
// for it, then blocks until a signal arrives.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include <semaphore.h>

#include "parhull/service/listener.h"

using namespace parhull;
using namespace parhull::service;

namespace {

// Signal handling via a semaphore: sem_post is async-signal-safe, and the
// main thread blocks in sem_wait instead of polling.
sem_t g_stop_sem;

void on_signal(int) { sem_post(&g_stop_sem); }

bool next_arg(int argc, char** argv, int& i, long& value) {
  if (i + 1 >= argc) return false;
  value = std::strtol(argv[++i], nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long v = 0;
    if (arg == "--host" && i + 1 < argc) {
      opts.host = argv[++i];
    } else if (arg == "--port" && next_arg(argc, argv, i, v)) {
      opts.port = static_cast<std::uint16_t>(v);
    } else if (arg == "--workers" && next_arg(argc, argv, i, v)) {
      opts.worker_threads = static_cast<int>(v);
    } else if (arg == "--max-connections" && next_arg(argc, argv, i, v)) {
      opts.max_connections = static_cast<std::size_t>(v);
    } else if (arg == "--max-queued-frames" && next_arg(argc, argv, i, v)) {
      opts.max_queued_frames = static_cast<std::size_t>(v);
    } else if (arg == "--max-tenants" && next_arg(argc, argv, i, v)) {
      opts.tenants.max_tenants = static_cast<std::size_t>(v);
    } else if (arg == "--max-pending" && next_arg(argc, argv, i, v)) {
      opts.tenants.session.limits.max_pending_requests =
          static_cast<std::size_t>(v);
    } else if (arg == "--max-points-per-command" &&
               next_arg(argc, argv, i, v)) {
      opts.tenants.session.limits.max_points_per_command =
          static_cast<std::size_t>(v);
    } else if (arg == "--max-points-per-tenant" &&
               next_arg(argc, argv, i, v)) {
      opts.tenants.session.limits.max_points_per_tenant =
          static_cast<std::size_t>(v);
    } else if (arg == "--deadline-ms" && next_arg(argc, argv, i, v)) {
      opts.tenants.session.batcher.supervisor.deadline_ms =
          static_cast<double>(v);
    } else if (arg == "--watchdog-ms" && next_arg(argc, argv, i, v)) {
      opts.tenants.session.batcher.supervisor.watchdog_ms =
          static_cast<double>(v);
    } else if (arg == "--idle-timeout-ms" && next_arg(argc, argv, i, v)) {
      opts.tenants.session.limits.idle_timeout_ms =
          static_cast<std::uint64_t>(v);
    } else if (arg == "--max-outbound-bytes" && next_arg(argc, argv, i, v)) {
      opts.max_outbound_bytes = static_cast<std::size_t>(v);
    } else if (arg == "--data-dir" && i + 1 < argc) {
      opts.tenants.data_dir = argv[++i];
    } else if (arg == "--sync" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "always") {
        opts.tenants.wal.sync = durability::WalSync::kAlways;
      } else if (mode == "interval") {
        opts.tenants.wal.sync = durability::WalSync::kInterval;
      } else if (mode == "none") {
        opts.tenants.wal.sync = durability::WalSync::kNone;
      } else {
        std::cerr << "bad --sync mode " << mode
                  << " (always | interval | none)\n";
        return 2;
      }
    } else if (arg == "--sync-interval-ms" && next_arg(argc, argv, i, v)) {
      opts.tenants.wal.sync_interval_ms = static_cast<double>(v);
    } else if (arg == "--checkpoint-bytes" && next_arg(argc, argv, i, v)) {
      opts.tenants.checkpoint_every_bytes = static_cast<std::uint64_t>(v);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  HullServer server(opts);
  if (server.start() != HullStatus::kOk) {
    std::cerr << "failed to bind " << opts.host << ":" << opts.port << "\n";
    return 1;
  }
  // Per-tenant recovery summaries BEFORE the readiness line, so a script
  // waiting for readiness can also capture what was recovered.
  for (const auto& [name, rep] : server.registry().recovery_reports()) {
    std::cout << "recovered tenant " << name << ": " << to_string(rep.status)
              << " — " << rep.detail << "\n";
  }
  std::cout << "hull_service listening on " << opts.host << ":"
            << server.port() << "\n"
            << std::flush;

  while (sem_wait(&g_stop_sem) != 0) {
  }
  server.stop();

  const ServiceStats s = server.stats();
  std::cout << "final: " << s.accepted_total << " connections ("
            << s.rejected_connections << " rejected), " << s.frames_total
            << " frames (" << s.shed_frames << " shed, " << s.protocol_errors
            << " protocol errors), " << s.commands_total << " commands, "
            << s.tenants << " tenants, " << s.bytes_in << " bytes in, "
            << s.bytes_out << " bytes out\n";
  return 0;
}
