// Transcript replay client for the hull service: pumps stdin to the
// server and server bytes to stdout until both sides are done. Relies on
// the service's half-close contract (docs/SERVICE.md): after the client
// shuts down its write side, the server executes everything it received,
// flushes every reply, and closes — so
//
//   ./example_hull_client --port P < transcript.txt > replies.txt
//
// replays a REPL transcript over the socket and captures byte-exact
// replies (the service-smoke CI job diffs them against the stdio REPL's
// golden output).
//
// Flags:
//   --host ADDR     server address (default 127.0.0.1)
//   --port P        server port (required)
//   --timeout-ms T  give up when the server goes silent this long
//                   (default 30000; exit code 3)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace {

bool next_arg(int argc, char** argv, int& i, long& value) {
  if (i + 1 >= argc) return false;
  value = std::strtol(argv[++i], nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 0;
  long timeout_ms = 30000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long v = 0;
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && next_arg(argc, argv, i, v)) {
      port = v;
    } else if (arg == "--timeout-ms" && next_arg(argc, argv, i, v)) {
      timeout_ms = v;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "usage: hull_client --port P [--host ADDR] [--timeout-ms T]\n";
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "connect " << host << ":" << port << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Ship the whole transcript, then half-close: the server's reply-drain
  // contract does the rest. Transcripts are scripts, not conversations, so
  // there is no need to interleave reads with writes for correctness —
  // but we still drain the socket while writing so a reply burst larger
  // than the kernel buffers cannot deadlock the two pipes.
  std::string pending;
  std::vector<char> buf(1 << 16);
  bool stdin_eof = false;
  bool sent_fin = false;
  while (true) {
    if (!stdin_eof && pending.size() < buf.size()) {
      std::cin.read(buf.data(), static_cast<std::streamsize>(buf.size()));
      const std::streamsize got = std::cin.gcount();
      if (got > 0) pending.append(buf.data(), static_cast<std::size_t>(got));
      if (!std::cin) stdin_eof = true;
    }
    if (stdin_eof && pending.empty() && !sent_fin) {
      ::shutdown(fd, SHUT_WR);
      sent_fin = true;
    }

    pollfd pfd{fd, POLLIN, 0};
    if (!pending.empty()) pfd.events |= POLLOUT;
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) {
      std::cerr << "timeout: no server activity for " << timeout_ms
                << " ms\n";
      ::close(fd);
      return 3;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::cerr << "poll: " << std::strerror(errno) << "\n";
      ::close(fd);
      return 1;
    }
    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
      const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
      if (n > 0) {
        std::cout.write(buf.data(), n);
        continue;
      }
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        break;  // server closed (or died): transcript is done
      }
    }
    if ((pfd.revents & POLLOUT) && !pending.empty()) {
      const ssize_t n =
          ::send(fd, pending.data(), pending.size(), MSG_NOSIGNAL);
      if (n > 0) {
        pending.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EINTR) {
        std::cerr << "send: " << std::strerror(errno) << "\n";
        ::close(fd);
        return 1;
      }
    }
  }
  std::cout << std::flush;
  ::close(fd);
  return 0;
}
