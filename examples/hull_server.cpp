// Interactive hull server: a stdin command loop over the batch-dynamic
// engine (docs/ENGINE.md). Inserts go through a RequestBatcher — the same
// MPMC submit / coalesce / publish path a real service would use — and
// queries run the engine/query.h kernels against the freshest snapshot,
// which never blocks on a batch in flight.
//
//   ./example_hull_server < commands.txt
//
// Commands (one per line; '#' starts a comment):
//   gen N SEED        submit N pseudo-random points on the unit sphere
//   insert X Y Z      submit one point
//   delete ID...      tombstone points by id (change propagation re-closes
//                     the hull when deleted ids are hull vertices)
//   update ID X Y Z   atomically delete ID and insert (X,Y,Z) in one epoch
//   query X Y Z       locate the point: inside / boundary / outside
//   extreme X Y Z     hull vertex maximizing the dot product with (X,Y,Z)
//   visible X Y Z     count facets visible from the point
//   stats             engine epoch statistics
//   help              this list
//   quit              drain pending inserts and exit
//
// The first submission must contain 4 affinely independent points
// (HullEngine's first-batch contract), so manual `insert`s are buffered
// locally until the buffer passes prepare_input<3>; everything after the
// bootstrap is submitted immediately.
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "parhull/engine/batcher.h"
#include "parhull/engine/query.h"
#include "parhull/engine/snapshot.h"
#include "parhull/workload/generators.h"

using namespace parhull;

namespace {

using Batcher = RequestBatcher<3>;

void print_help() {
  std::cout << "commands:\n"
               "  gen N SEED      submit N points on the unit sphere\n"
               "  insert X Y Z    submit one point\n"
               "  delete ID...    tombstone points by id\n"
               "  update ID X Y Z atomic delete + insert in one epoch\n"
               "  query X Y Z     inside / boundary / outside\n"
               "  extreme X Y Z   hull vertex maximizing dot(v, dir)\n"
               "  visible X Y Z   count facets visible from the point\n"
               "  stats           engine epoch statistics\n"
               "  help            this list\n"
               "  quit            drain pending inserts and exit\n";
}

// Submit and report synchronously; the REPL is single-producer, so waiting
// on the future here keeps the output ordered with the commands.
void submit_and_report(Batcher& batcher, PointSet<3> pts) {
  const std::size_t n = pts.size();
  auto fut = batcher.submit(std::move(pts));
  const Batcher::InsertOutcome out = fut.get();
  if (out.ok) {
    std::cout << "ok: +" << n << " points committed at epoch " << out.epoch
              << " (batch of " << out.batch_points << ")\n";
  } else {
    std::cout << "insert failed: " << to_string(out.status) << "\n";
  }
}

bool read_point(std::istringstream& in, Point<3>& p) {
  if (!(in >> p[0] >> p[1] >> p[2])) {
    std::cout << "expected three coordinates\n";
    return false;
  }
  if (!finite<3>(p)) {
    std::cout << "coordinates must be finite\n";
    return false;
  }
  return true;
}

}  // namespace

int main() {
  Batcher batcher;
  PointSet<3> bootstrap;  // buffered until it can seed the first simplex
  bool bootstrapped = false;
  print_help();

  std::string line;
  while (std::getline(std::cin, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
      continue;
    }

    if (cmd == "gen" || cmd == "insert") {
      PointSet<3> pts;
      if (cmd == "gen") {
        long n = 0;
        unsigned long seed = 0;
        if (!(in >> n >> seed) || n <= 0) {
          std::cout << "usage: gen N SEED\n";
          continue;
        }
        pts = on_sphere<3>(static_cast<std::size_t>(n),
                           static_cast<std::uint64_t>(seed));
      } else {
        Point<3> p;
        if (!read_point(in, p)) continue;
        pts.push_back(p);
      }
      if (!bootstrapped) {
        bootstrap.insert(bootstrap.end(), pts.begin(), pts.end());
        PointSet<3> seeded = bootstrap;
        if (!prepare_input<3>(seeded)) {
          std::cout << "buffered " << pts.size() << " point(s); "
                    << bootstrap.size()
                    << " total (need 4 affinely independent to start)\n";
          continue;
        }
        bootstrapped = true;
        bootstrap.clear();
        submit_and_report(batcher, std::move(seeded));
      } else {
        submit_and_report(batcher, std::move(pts));
      }
      continue;
    }

    if (cmd == "delete") {
      std::vector<PointId> ids;
      unsigned long id = 0;
      while (in >> id) ids.push_back(static_cast<PointId>(id));
      if (ids.empty()) {
        std::cout << "usage: delete ID [ID...]\n";
        continue;
      }
      auto fut = batcher.submit_delete(std::move(ids));
      const Batcher::InsertOutcome out = fut.get();
      if (out.ok) {
        std::cout << "ok: " << out.deleted_points
                  << " point(s) tombstoned at epoch " << out.epoch << "\n";
      } else if (out.status == HullStatus::kBadInput) {
        std::cout << "delete rejected: ids must be in range, alive, and "
                     "distinct (docs/ERRORS.md)\n";
      } else {
        std::cout << "delete failed: " << to_string(out.status) << "\n";
      }
      continue;
    }

    if (cmd == "update") {
      unsigned long id = 0;
      if (!(in >> id)) {
        std::cout << "usage: update ID X Y Z\n";
        continue;
      }
      Point<3> p;
      if (!read_point(in, p)) continue;
      PointSet<3> moved;
      moved.push_back(p);
      auto fut = batcher.submit_update({static_cast<PointId>(id)},
                                       std::move(moved));
      const Batcher::InsertOutcome out = fut.get();
      if (out.ok) {
        std::cout << "ok: point " << id << " moved at epoch " << out.epoch
                  << " (the replacement has a fresh id)\n";
      } else if (out.status == HullStatus::kBadInput) {
        std::cout << "update rejected: id must be in range and alive "
                     "(docs/ERRORS.md)\n";
      } else {
        std::cout << "update failed: " << to_string(out.status) << "\n";
      }
      continue;
    }

    if (cmd == "query" || cmd == "extreme" || cmd == "visible") {
      Point<3> p;
      if (!read_point(in, p)) continue;
      auto snap = batcher.snapshot();
      if (snap == nullptr) {
        std::cout << "no hull yet (insert points first)\n";
        continue;
      }
      if (cmd == "query") {
        switch (locate_point<3>(*snap, p)) {
          case PointLocation::kInside:
            std::cout << "inside (epoch " << snap->epoch << ")\n";
            break;
          case PointLocation::kOnBoundary:
            std::cout << "on boundary (epoch " << snap->epoch << ")\n";
            break;
          case PointLocation::kOutside:
            std::cout << "outside (epoch " << snap->epoch << ")\n";
            break;
        }
      } else if (cmd == "extreme") {
        const auto res = extreme_point<3>(*snap, p);
        const Point<3>& v = (*snap->points)[res.vertex];
        std::cout << "vertex " << res.vertex << " = (" << v[0] << ", " << v[1]
                  << ", " << v[2] << "), dot " << res.value << " ("
                  << res.facets_visited << " facets visited)\n";
      } else {
        const auto vis = visible_facets<3>(*snap, p);
        std::cout << vis.size() << " of " << snap->facet_count()
                  << " facets visible\n";
      }
      continue;
    }

    if (cmd == "stats") {
      const EngineStats s = batcher.stats();
      std::cout << "epoch " << s.epoch << ": " << s.live_points << " live of "
                << s.points << " points, " << s.hull_facets
                << " hull facets\n"
                << "batches " << s.batches << " (" << s.delete_batches
                << " with deletions, " << s.failed_batches << " failed, "
                << batcher.pending_requests() << " pending), "
                << s.points_deleted_total << " points deleted, "
                << s.facets_created_total << " facets created, "
                << s.visibility_tests_total << " visibility tests, "
                << s.regrows_total << " regrows\n"
                << "last batch: " << s.last_batch_points << " points in "
                << s.last_batch_ms << " ms\n";
      continue;
    }

    std::cout << "unknown command '" << cmd << "' (try help)\n";
  }

  batcher.close();
  const EngineStats s = batcher.stats();
  std::cout << "final: epoch " << s.epoch << ", " << s.live_points
            << " live of " << s.points << " points, " << s.hull_facets
            << " hull facets\n";
  return 0;
}
