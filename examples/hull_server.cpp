// Interactive hull REPL: a thin stdio adapter over the shared service
// command dispatch (src/parhull/service/commands.h). Every verb — gen /
// insert / delete / update / query / extreme / visible / stats — runs
// through TenantSession::execute, the exact code path the network service
// (examples/hull_service.cpp) multiplexes across tenants, so the two
// surfaces answer byte-for-byte identically and the golden-transcript
// tests pin both at once (docs/SERVICE.md).
//
//   ./example_hull_server < commands.txt
//
// Flags:
//   --max-points-per-command N   per-command admission cap (default 2^20)
//   --max-points-per-tenant N    whole-session point budget (default 2^23)
//   --deadline-ms MS             per-batch Supervisor deadline (SLO)
//   --watchdog-ms MS             per-batch stall watchdog
//
// The abuse guards live in the dispatch, not here: `gen` is capped before
// it allocates, and `extreme`/`visible` against an empty hull answer
// "hull is empty" instead of indexing with an invalid vertex id.
#include <cstdlib>
#include <iostream>
#include <string>

#include "parhull/service/commands.h"

using namespace parhull;
using namespace parhull::service;

namespace {

bool next_arg(int argc, char** argv, int& i, long& value) {
  if (i + 1 >= argc) return false;
  value = std::strtol(argv[++i], nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TenantSession::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long v = 0;
    if (arg == "--max-points-per-command" && next_arg(argc, argv, i, v)) {
      opts.limits.max_points_per_command = static_cast<std::size_t>(v);
    } else if (arg == "--max-points-per-tenant" && next_arg(argc, argv, i, v)) {
      opts.limits.max_points_per_tenant = static_cast<std::size_t>(v);
    } else if (arg == "--deadline-ms" && next_arg(argc, argv, i, v)) {
      opts.batcher.supervisor.deadline_ms = static_cast<double>(v);
    } else if (arg == "--watchdog-ms" && next_arg(argc, argv, i, v)) {
      opts.batcher.supervisor.watchdog_ms = static_cast<double>(v);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  TenantSession session(opts);
  std::cout << TenantSession::help_text();

  std::string line;
  while (std::getline(std::cin, line)) {
    const CommandResult res = session.execute(line);
    std::cout << res.text << std::flush;
    if (res.quit) break;
  }

  session.close();
  const EngineStats s = session.stats();
  std::cout << "final: epoch " << s.epoch << ", " << s.live_points
            << " live of " << s.points << " points, " << s.hull_facets
            << " hull facets\n";
  return 0;
}
