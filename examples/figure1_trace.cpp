// Walk through the paper's Figure 1 example (Section 5.3) and narrate what
// the parallel algorithm does, wave by wave.
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "parhull/core/parallel_hull.h"
#include "parhull/workload/figure1.h"

using namespace parhull;
using namespace parhull::figure1;

int main() {
  auto pts = points();
  ParallelHull<2> hull;
  auto res = hull.run(pts);
  if (!res.ok) return 1;

  auto ename = [&](FacetId id) {
    const auto& f = hull.facet(id);
    return edge_name(std::min(f.vertices[0], f.vertices[1]),
                     std::max(f.vertices[0], f.vertices[1]));
  };
  auto is_new = [&](const Facet<2>& f) {
    return f.apex == kA || f.apex == kB || f.apex == kC;
  };

  std::cout << "Starting hull: u-v-w-x-y-z-t; inserting a, b, c "
               "(lexicographic priorities).\n\n";
  std::vector<std::uint32_t> wave(hull.facet_count(), 0);
  std::map<std::uint32_t, std::vector<FacetId>> by_wave;
  for (FacetId id = 0; id < hull.facet_count(); ++id) {
    const auto& f = hull.facet(id);
    if (!is_new(f)) continue;
    wave[id] = 1 + std::max(wave[f.support0], wave[f.support1]);
    by_wave[wave[id]].push_back(id);
  }
  for (const auto& [w, ids] : by_wave) {
    std::cout << "wave " << w << ":\n";
    for (FacetId id : ids) {
      const auto& f = hull.facet(id);
      std::cout << "  add " << ename(id) << " (apex " << name(f.apex)
                << "), supported by {" << ename(f.support0) << ", "
                << ename(f.support1) << "}"
                << (f.alive() ? "" : "   [later removed]") << "\n";
    }
  }
  std::cout << "\nburied ridge pairs: " << res.buried_pairs
            << " (w-b and b-a both see c, so their shared ridge is buried)\n";
  std::cout << "final hull edges: ";
  for (FacetId id : res.hull) std::cout << ename(id) << " ";
  std::cout << "\n";
  return 0;
}
