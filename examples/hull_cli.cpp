// Command-line hull tool: read a 3D point cloud (xyz lines), compute its
// convex hull with the parallel incremental algorithm, write an OFF mesh,
// and print run statistics. With no input file, generates a demo cloud.
//
//   ./example_hull_cli [input.xyz] [output.off]
//
// Passing --demo in place of input.xyz uses the generated demo cloud while
// still honoring the output argument (used by scripts/run_benches.sh for
// the plane-kernel on/off facet-set equivalence check).
#include <cmath>
#include <cstring>
#include <iostream>

#include "parhull/core/parallel_hull.h"
#include "parhull/workload/generators.h"
#include "parhull/workload/io.h"

using namespace parhull;

int main(int argc, char** argv) {
  PointSet<3> pts;
  if (argc > 1 && std::strcmp(argv[1], "--demo") != 0) {
    if (!read_points_file<3>(argv[1], pts)) {
      std::cerr << "cannot read " << argv[1]
                << " (expected 3 coordinates per line)\n";
      return 1;
    }
    std::cout << "read " << pts.size() << " points from " << argv[1] << "\n";
  } else {
    pts = on_sphere<3>(20000, 7);
    std::cout << "no input given; generated " << pts.size()
              << " points on the unit sphere\n";
  }
  pts = random_order(pts, 99);
  if (!prepare_input<3>(pts)) {
    std::cerr << "input degenerate (needs 4 affinely independent points)\n";
    return 1;
  }

  ParallelHull<3> hull;
  auto res = hull.run(pts);
  if (!res.ok) {
    std::cerr << "hull run failed: " << to_string(res.status) << "\n";
    return 1;
  }
  if (res.regrows > 0 || res.used_chained_fallback) {
    std::cout << "ridge table regrown " << res.regrows << "x"
              << (res.used_chained_fallback ? ", chained fallback used" : "")
              << "\n";
  }
  std::cout << "hull facets:       " << res.hull.size() << "\n"
            << "facets created:    " << res.facets_created << "\n"
            << "visibility tests:  " << res.visibility_tests << "\n"
            << "dependence depth:  " << res.dependence_depth << " (ln n = "
            << std::log(static_cast<double>(pts.size())) << ")\n";

  if (argc > 2) {
    std::vector<std::array<PointId, 3>> facets;
    for (FacetId id : res.hull) facets.push_back(hull.facet(id).vertices);
    if (!write_off_file(argv[2], pts, facets)) {
      std::cerr << "cannot write " << argv[2] << "\n";
      return 1;
    }
    std::cout << "wrote OFF mesh to  " << argv[2] << "\n";
  }
  return 0;
}
