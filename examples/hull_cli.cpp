// Command-line hull tool: read a 3D point cloud (xyz lines), compute its
// convex hull with the parallel incremental algorithm, write an OFF mesh,
// and print run statistics. With no input file, generates a demo cloud.
//
//   ./example_hull_cli [flags] [input.xyz] [output.off]
//
// Passing --demo in place of input.xyz uses the generated demo cloud while
// still honoring the output argument (used by scripts/run_benches.sh for
// the plane-kernel on/off facet-set equivalence check). OFF facets are
// emitted in canonical order (core/hull_output.h), so two runs of the same
// input diff clean regardless of schedule.
//
// Supervision flags (docs/ERRORS.md):
//   --deadline-ms N   fail the run with deadline_exceeded after N ms
//   --retries N       retry transient failures up to N times (backoff)
//   --watchdog-ms N   declare the run stalled after N ms without progress
// Any of these routes the run through the Supervisor driver; a non-ok exit
// prints the per-attempt log.
//
// Batch-dynamic engine (docs/ENGINE.md):
//   --batches N       insert the input through HullEngine in N equal
//                     batches instead of one ParallelHull run, printing
//                     per-epoch progress
//   --delete-fraction F  after the last insert epoch, delete a deterministic
//                     fraction F of the point ids (ids 0..3 always survive)
//                     in one delete_batch epoch and emit the survivor hull.
//                     The facet set is independent of --batches (invariant
//                     I10) — scripts/run_benches.sh diffs two splits.
//   --stats-json P    dump predicate counters, the supervisor attempt log,
//                     and (with --batches) the engine epoch stats to P as
//                     JSON (the attempt log was stderr-only text before)
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "parhull/core/hull_output.h"
#include "parhull/core/parallel_hull.h"
#include "parhull/engine/engine.h"
#include "parhull/engine/snapshot.h"
#include "parhull/geometry/predicates.h"
#include "parhull/parallel/supervisor.h"
#include "parhull/workload/generators.h"
#include "parhull/workload/io.h"

using namespace parhull;

namespace {

bool parse_double_flag(int argc, char** argv, int& i, const char* name,
                       double& out) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::cerr << name << " requires a value\n";
    std::exit(1);
  }
  out = std::atof(argv[++i]);
  return true;
}

void print_attempts_json(std::ostream& os,
                         const std::vector<AttemptRecord>& attempts,
                         int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const AttemptRecord& a = attempts[i];
    os << (i == 0 ? "\n" : ",\n")
       << pad << "  {\"attempt\": " << a.attempt << ", \"status\": \""
       << to_string(a.status) << "\", \"elapsed_ms\": " << a.elapsed_ms
       << ", \"backoff_ms\": " << a.backoff_ms << "}";
  }
  if (!attempts.empty()) os << "\n" << pad;
  os << "]";
}

struct RunSummary {
  HullStatus status = HullStatus::kBadInput;
  std::size_t hull_facets = 0;
  std::uint64_t facets_created = 0;
  std::uint64_t visibility_tests = 0;
  std::uint32_t dependence_depth = 0;
  std::uint32_t regrows = 0;
  bool used_chained_fallback = false;
};

bool write_stats_json(const char* path, const RunSummary& run,
                      const std::vector<AttemptRecord>& attempts,
                      const EngineStats* engine) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"status\": \"" << to_string(run.status) << "\",\n"
     << "  \"hull_facets\": " << run.hull_facets << ",\n"
     << "  \"facets_created\": " << run.facets_created << ",\n"
     << "  \"visibility_tests\": " << run.visibility_tests << ",\n"
     << "  \"dependence_depth\": " << run.dependence_depth << ",\n"
     << "  \"regrows\": " << run.regrows << ",\n"
     << "  \"used_chained_fallback\": "
     << (run.used_chained_fallback ? "true" : "false") << ",\n"
     << "  \"predicates\": {\"calls\": " << predicate_calls()
     << ", \"exact_fallbacks\": " << predicate_exact_fallbacks() << "},\n"
     << "  \"attempts\": ";
  print_attempts_json(os, attempts, 2);
  if (engine != nullptr) {
    os << ",\n  \"engine\": ";
    print_engine_stats_json(os, *engine, 2);
  }
  os << "\n}\n";
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  double deadline_ms = 0;
  double watchdog_ms = 0;
  double retries = 0;
  double batches = 0;
  double delete_fraction = 0;
  std::vector<const char*> positional;
  const char* stats_json_path = nullptr;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--stats-json requires a path\n";
        return 1;
      }
      stats_json_path = argv[++i];
    } else if (parse_double_flag(argc, argv, i, "--deadline-ms", deadline_ms) ||
               parse_double_flag(argc, argv, i, "--watchdog-ms", watchdog_ms) ||
               parse_double_flag(argc, argv, i, "--retries", retries) ||
               parse_double_flag(argc, argv, i, "--batches", batches) ||
               parse_double_flag(argc, argv, i, "--delete-fraction",
                                 delete_fraction)) {
      // parsed
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 1;
    } else {
      positional.push_back(argv[i]);
    }
  }

  PointSet<3> pts;
  if (!demo && !positional.empty()) {
    if (!read_points_file<3>(positional[0], pts)) {
      std::cerr << "cannot read " << positional[0]
                << " (expected 3 finite coordinates per line)\n";
      return 1;
    }
    std::cout << "read " << pts.size() << " points from " << positional[0]
              << "\n";
  } else {
    pts = on_sphere<3>(20000, 7);
    std::cout << "no input given; generated " << pts.size()
              << " points on the unit sphere\n";
  }
  const char* out_path = nullptr;
  if (demo) {
    if (!positional.empty()) out_path = positional[0];
  } else if (positional.size() > 1) {
    out_path = positional[1];
  }
  if (!all_finite<3>(pts)) {
    // read_points already rejects these; this guards the generator path and
    // keeps the error typed for anything that slips through.
    std::cerr << "input contains non-finite coordinates ("
              << to_string(HullStatus::kBadInput) << ")\n";
    return 1;
  }
  pts = random_order(pts, 99);
  if (!prepare_input<3>(pts)) {
    std::cerr << "input degenerate (needs 4 affinely independent points)\n";
    return 1;
  }
  reset_predicate_stats();

  std::vector<AttemptRecord> attempts;
  RunSummary run;
  std::vector<std::array<PointId, 3>> out_facets;  // canonical OFF order

  const int n_batches =
      std::max(0, static_cast<int>(batches));  // 0 = one-shot ParallelHull
  if (n_batches > 0) {
    // --- Batch-dynamic path: insert the prepared sequence through the
    // engine in N contiguous batches; each commit publishes an epoch.
    HullEngine<3> engine;
    HullEngine<3>::Params params;
    RunController ctrl;
    if (deadline_ms > 0) params.controller = &ctrl;
    engine.set_params(params);
    const std::size_t n = pts.size();
    const std::size_t per =
        (n + static_cast<std::size_t>(n_batches) - 1) /
        static_cast<std::size_t>(n_batches);
    for (std::size_t first = 0; first < n; first += per) {
      const std::size_t last = std::min(n, first + per);
      PointSet<3> batch(pts.begin() + static_cast<std::ptrdiff_t>(first),
                        pts.begin() + static_cast<std::ptrdiff_t>(last));
      if (deadline_ms > 0) {
        ctrl.reset();
        ctrl.set_deadline_ms(deadline_ms);
      }
      auto res = engine.insert_batch(batch);
      run.status = res.status;
      run.regrows += res.regrows;
      run.used_chained_fallback |= res.used_chained_fallback;
      if (!res.ok) {
        std::cerr << "batch at point " << first
                  << " failed: " << to_string(res.status) << "\n";
        break;
      }
      std::cout << "epoch " << res.epoch << ": +" << res.batch_points
                << " points, " << res.hull_facets << " hull facets\n";
    }
    if (run.status == HullStatus::kOk && delete_fraction > 0) {
      // Deterministic fraction of the id space (the same Knuth-hash subset
      // bench_e17_deletion uses); ids 0..3 always survive so the survivor
      // hull stays full-dimensional.
      const std::uint64_t cut =
          static_cast<std::uint64_t>(delete_fraction * 1e6);
      std::vector<PointId> dels;
      for (PointId id = 4; id < static_cast<PointId>(n); ++id) {
        if ((static_cast<std::uint64_t>(id) * 2654435761ull) % 1000000ull <
            cut) {
          dels.push_back(id);
        }
      }
      if (!dels.empty()) {
        if (deadline_ms > 0) {
          ctrl.reset();
          ctrl.set_deadline_ms(deadline_ms);
        }
        auto res = engine.delete_batch(dels);
        run.status = res.status;
        if (!res.ok) {
          std::cerr << "delete batch failed: " << to_string(res.status)
                    << "\n";
        } else {
          std::cout << "epoch " << res.epoch << ": -" << dels.size()
                    << " points (" << res.tombstoned_facets
                    << " frontier facets, " << res.closure_facets
                    << " closure), " << res.hull_facets << " hull facets, "
                    << res.live_points << " live\n";
        }
      }
    }
    const EngineStats stats = engine.stats();
    auto snap = engine.snapshot();
    if (run.status == HullStatus::kOk && snap != nullptr) {
      run.hull_facets = snap->facet_count();
      run.facets_created = stats.facets_created_total;
      run.visibility_tests = stats.visibility_tests_total;
      for (const SnapshotFacet<3>& f : snap->facets) {
        out_facets.push_back(f.vertices);  // snapshots are already canonical
      }
    }
    if (stats_json_path != nullptr &&
        !write_stats_json(stats_json_path, run, attempts, &stats)) {
      std::cerr << "cannot write " << stats_json_path << "\n";
      return 1;
    }
    if (run.status != HullStatus::kOk) return 1;
    std::cout << "hull facets:       " << run.hull_facets << "\n"
              << "epochs published:  " << stats.epoch << "\n"
              << "facets created:    " << stats.facets_created_total << "\n"
              << "visibility tests:  " << stats.visibility_tests_total << "\n";
  } else {
    ParallelHull<3> hull;
    ParallelHull<3>::Result res;
    const bool supervised = deadline_ms > 0 || watchdog_ms > 0 || retries > 0;
    if (supervised) {
      SupervisorOptions opts;
      opts.deadline_ms = deadline_ms;
      opts.watchdog_ms = watchdog_ms;
      opts.retry.max_attempts = 1 + std::max(0, static_cast<int>(retries));
      auto sup = supervised_run<ParallelHull<3>, 3>(
          hull, pts, /*auto_expected_keys=*/4 * 3 * pts.size() + 64, opts);
      attempts = sup.attempts;
      if (sup.attempts.size() > 1 || !sup.ok) {
        for (const auto& a : sup.attempts) {
          std::cerr << "attempt " << a.attempt << ": " << to_string(a.status)
                    << " after " << a.elapsed_ms << " ms";
          if (a.backoff_ms > 0)
            std::cerr << ", backoff " << a.backoff_ms << " ms";
          std::cerr << "\n";
        }
      }
      res = std::move(sup.result);
    } else {
      res = hull.run(pts);
    }
    run.status = res.status;
    run.hull_facets = res.hull.size();
    run.facets_created = res.facets_created;
    run.visibility_tests = res.visibility_tests;
    run.dependence_depth = res.dependence_depth;
    run.regrows = res.regrows;
    run.used_chained_fallback = res.used_chained_fallback;
    if (stats_json_path != nullptr &&
        !write_stats_json(stats_json_path, run, attempts, nullptr)) {
      std::cerr << "cannot write " << stats_json_path << "\n";
      return 1;
    }
    if (!res.ok) {
      std::cerr << "hull run failed: " << to_string(res.status) << "\n";
      return 1;
    }
    if (res.regrows > 0 || res.used_chained_fallback) {
      std::cout << "ridge table regrown " << res.regrows << "x"
                << (res.used_chained_fallback ? ", chained fallback used" : "")
                << "\n";
    }
    std::cout << "hull facets:       " << res.hull.size() << "\n"
              << "facets created:    " << res.facets_created << "\n"
              << "visibility tests:  " << res.visibility_tests << "\n"
              << "dependence depth:  " << res.dependence_depth << " (ln n = "
              << std::log(static_cast<double>(pts.size())) << ")\n";
    for (FacetId id : canonical_facet_order<3>(hull, res.hull)) {
      out_facets.push_back(hull.facet(id).vertices);
    }
  }

  if (out_path != nullptr) {
    if (!write_off_file(out_path, pts, out_facets)) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote OFF mesh to  " << out_path << "\n";
  }
  return 0;
}
