// Command-line hull tool: read a 3D point cloud (xyz lines), compute its
// convex hull with the parallel incremental algorithm, write an OFF mesh,
// and print run statistics. With no input file, generates a demo cloud.
//
//   ./example_hull_cli [flags] [input.xyz] [output.off]
//
// Passing --demo in place of input.xyz uses the generated demo cloud while
// still honoring the output argument (used by scripts/run_benches.sh for
// the plane-kernel on/off facet-set equivalence check).
//
// Supervision flags (docs/ERRORS.md):
//   --deadline-ms N   fail the run with deadline_exceeded after N ms
//   --retries N       retry transient failures up to N times (backoff)
//   --watchdog-ms N   declare the run stalled after N ms without progress
// Any of these routes the run through the Supervisor driver; a non-ok exit
// prints the per-attempt log.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "parhull/core/parallel_hull.h"
#include "parhull/parallel/supervisor.h"
#include "parhull/workload/generators.h"
#include "parhull/workload/io.h"

using namespace parhull;

namespace {

bool parse_double_flag(int argc, char** argv, int& i, const char* name,
                       double& out) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::cerr << name << " requires a value\n";
    std::exit(1);
  }
  out = std::atof(argv[++i]);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double deadline_ms = 0;
  double watchdog_ms = 0;
  double retries = 0;
  std::vector<const char*> positional;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (parse_double_flag(argc, argv, i, "--deadline-ms", deadline_ms) ||
               parse_double_flag(argc, argv, i, "--watchdog-ms", watchdog_ms) ||
               parse_double_flag(argc, argv, i, "--retries", retries)) {
      // parsed
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 1;
    } else {
      positional.push_back(argv[i]);
    }
  }

  PointSet<3> pts;
  if (!demo && !positional.empty()) {
    if (!read_points_file<3>(positional[0], pts)) {
      std::cerr << "cannot read " << positional[0]
                << " (expected 3 finite coordinates per line)\n";
      return 1;
    }
    std::cout << "read " << pts.size() << " points from " << positional[0]
              << "\n";
  } else {
    pts = on_sphere<3>(20000, 7);
    std::cout << "no input given; generated " << pts.size()
              << " points on the unit sphere\n";
  }
  const char* out_path = nullptr;
  if (demo) {
    if (!positional.empty()) out_path = positional[0];
  } else if (positional.size() > 1) {
    out_path = positional[1];
  }
  if (!all_finite<3>(pts)) {
    // read_points already rejects these; this guards the generator path and
    // keeps the error typed for anything that slips through.
    std::cerr << "input contains non-finite coordinates ("
              << to_string(HullStatus::kBadInput) << ")\n";
    return 1;
  }
  pts = random_order(pts, 99);
  if (!prepare_input<3>(pts)) {
    std::cerr << "input degenerate (needs 4 affinely independent points)\n";
    return 1;
  }

  ParallelHull<3> hull;
  ParallelHull<3>::Result res;
  const bool supervised = deadline_ms > 0 || watchdog_ms > 0 || retries > 0;
  if (supervised) {
    SupervisorOptions opts;
    opts.deadline_ms = deadline_ms;
    opts.watchdog_ms = watchdog_ms;
    opts.retry.max_attempts = 1 + std::max(0, static_cast<int>(retries));
    auto sup = supervised_run<ParallelHull<3>, 3>(
        hull, pts, /*auto_expected_keys=*/4 * 3 * pts.size() + 64, opts);
    if (sup.attempts.size() > 1 || !sup.ok) {
      for (const auto& a : sup.attempts) {
        std::cerr << "attempt " << a.attempt << ": " << to_string(a.status)
                  << " after " << a.elapsed_ms << " ms";
        if (a.backoff_ms > 0) std::cerr << ", backoff " << a.backoff_ms << " ms";
        std::cerr << "\n";
      }
    }
    res = std::move(sup.result);
  } else {
    res = hull.run(pts);
  }
  if (!res.ok) {
    std::cerr << "hull run failed: " << to_string(res.status) << "\n";
    return 1;
  }
  if (res.regrows > 0 || res.used_chained_fallback) {
    std::cout << "ridge table regrown " << res.regrows << "x"
              << (res.used_chained_fallback ? ", chained fallback used" : "")
              << "\n";
  }
  std::cout << "hull facets:       " << res.hull.size() << "\n"
            << "facets created:    " << res.facets_created << "\n"
            << "visibility tests:  " << res.visibility_tests << "\n"
            << "dependence depth:  " << res.dependence_depth << " (ln n = "
            << std::log(static_cast<double>(pts.size())) << ")\n";

  if (out_path != nullptr) {
    std::vector<std::array<PointId, 3>> facets;
    for (FacetId id : res.hull) facets.push_back(hull.facet(id).vertices);
    if (!write_off_file(out_path, pts, facets)) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote OFF mesh to  " << out_path << "\n";
  }
  return 0;
}
