// Triangulate scattered terrain samples with the PARALLEL Delaunay
// triangulation (the paper's generic Algorithm 1 instantiated for the
// Delaunay configuration space) and report mesh quality statistics.
//
//   ./example_terrain_mesh [samples] [seed]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "parhull/delaunay/parallel_delaunay2d.h"
#include "parhull/workload/generators.h"

using namespace parhull;

namespace {

double terrain_height(const Point2& p) {
  return 0.3 * std::sin(3 * p[0]) * std::cos(2 * p[1]) +
         0.1 * std::sin(11 * p[0] + 5 * p[1]);
}

double tri_area(const Point2& a, const Point2& b, const Point2& c) {
  return 0.5 * std::fabs((b[0] - a[0]) * (c[1] - a[1]) -
                         (b[1] - a[1]) * (c[0] - a[0]));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // Scattered survey points over [-1,1]^2, in random insertion order.
  PointSet<2> pts = random_order(uniform_cube<2>(n, seed), seed + 1);

  ParallelDelaunay2D<> dt;
  auto res = dt.run(pts);
  if (!res.ok) {
    std::cerr << "triangulation failed\n";
    return 1;
  }
  double total_area = 0, min_area = 1e300;
  for (const auto& t : res.triangles) {
    double a = tri_area(pts[t[0]], pts[t[1]], pts[t[2]]);
    total_area += a;
    min_area = std::min(min_area, a);
  }
  std::cout << "samples:              " << n << "\n"
            << "mesh triangles:       " << res.triangles.size() << "\n"
            << "covered area:         " << total_area
            << " (domain area 4.0; boundary gaps are hull pockets)\n"
            << "smallest triangle:    " << min_area << "\n"
            << "incircle tests:       " << res.incircle_tests << "\n"
            << "dependence depth:     " << res.dependence_depth
            << "  (ln n = " << std::log(static_cast<double>(n)) << ")\n"
            << "process rounds:       " << res.max_round << "\n";

  // Sample an interpolated height: locate by scan (demo only).
  Point2 q{{0.123, -0.456}};
  for (const auto& t : res.triangles) {
    const Point2 &a = pts[t[0]], &b = pts[t[1]], &c = pts[t[2]];
    double a_full = tri_area(a, b, c);
    double w0 = tri_area(q, b, c) / a_full;
    double w1 = tri_area(a, q, c) / a_full;
    double w2 = tri_area(a, b, q) / a_full;
    if (w0 + w1 + w2 <= 1.0 + 1e-9) {
      double h = w0 * terrain_height(a) + w1 * terrain_height(b) +
                 w2 * terrain_height(c);
      std::cout << "height at (" << q[0] << ", " << q[1] << "): " << h
                << " (true " << terrain_height(q) << ")\n";
      break;
    }
  }
  return 0;
}
